(* Error-path and robustness tests: invalid inputs must fail loudly and
   precisely, and the parametric scenario sweeps must match their
   closed-form ratios. *)

open Execgraph

let q = Rat.of_ints

(* A chatty echo algorithm for exercising the fault machinery: the
   wake-up broadcasts 0, and every received value below 2 is
   re-broadcast incremented, so runs generate a steady message flow
   until [max_events] cuts them off. *)
let chatter : (int, int) Sim.algorithm =
  let broadcast ~self ~nprocs v =
    List.filter_map
      (fun dst -> if dst = self then None else Some { Sim.dst; payload = v })
      (List.init nprocs Fun.id)
  in
  {
    init = (fun ~self ~nprocs -> (0, broadcast ~self ~nprocs 0));
    step =
      (fun ~self ~nprocs st ~sender:_ v ->
        (st + 1, if v < 2 then broadcast ~self ~nprocs (v + 1) else []));
  }

let raises_invalid name f =
  Alcotest.(check bool) name true
    (match f () with
    | exception Invalid_argument _ -> true
    | exception Division_by_zero -> true
    | _ -> false)

let unit_tests =
  [
    Alcotest.test_case "bigint: malformed strings rejected" `Quick (fun () ->
        List.iter
          (fun s -> raises_invalid s (fun () -> Bigint.of_string s))
          [ ""; "abc"; "1.5"; "--3"; "-" ];
        raises_invalid "pow negative" (fun () -> Bigint.pow Bigint.two (-1));
        raises_invalid "shift negative" (fun () -> Bigint.shift_left Bigint.one (-1));
        raises_invalid "div by zero" (fun () -> Bigint.div Bigint.one Bigint.zero);
        raises_invalid "of_float nan" (fun () -> Bigint.of_float_floor Float.nan));
    Alcotest.test_case "rat: zero denominators and inverses rejected" `Quick (fun () ->
        raises_invalid "of_ints 1 0" (fun () -> Rat.of_ints 1 0);
        raises_invalid "inv 0" (fun () -> Rat.inv Rat.zero);
        raises_invalid "div by 0" (fun () -> Rat.div Rat.one Rat.zero));
    Alcotest.test_case "digraph: out-of-range edges rejected" `Quick (fun () ->
        let g = Digraph.create 2 in
        raises_invalid "src out of range" (fun () -> Digraph.add_edge g ~src:5 ~dst:0);
        raises_invalid "dst out of range" (fun () -> Digraph.add_edge g ~src:0 ~dst:(-1));
        raises_invalid "edge index" (fun () -> Digraph.edge g 0));
    Alcotest.test_case "execgraph: invalid construction rejected" `Quick (fun () ->
        let g = Graph.create ~nprocs:2 in
        raises_invalid "bad process" (fun () -> Graph.add_event g ~proc:7);
        raises_invalid "bad event ids" (fun () -> Graph.add_message g ~src:0 ~dst:1);
        raises_invalid "event out of range" (fun () -> Graph.event g 0));
    Alcotest.test_case "abc checker: Xi <= 1 rejected" `Quick (fun () ->
        let g = Graph.create ~nprocs:1 in
        ignore (Graph.add_event g ~proc:0);
        raises_invalid "Xi = 1" (fun () -> Abc_check.is_admissible g ~xi:Rat.one);
        raises_invalid "Xi = 1/2" (fun () -> Abc_check.is_admissible g ~xi:(q 1 2)));
    Alcotest.test_case "scenario builders validate their parameters" `Quick (fun () ->
        raises_invalid "spanning k1=0" (fun () -> Core.Scenarios.spanning_cycle ~k1:0 ~k2:3 ());
        raises_invalid "timeout odd chain" (fun () -> Core.Scenarios.timeout ~chain:3 ());
        raises_invalid "timeout chain 0" (fun () -> Core.Scenarios.timeout ~chain:0 ()));
    Alcotest.test_case "lockstep schedules validate" `Quick (fun () ->
        raises_invalid "uniform 0" (fun () -> Core.Lockstep.uniform_schedule 0);
        raises_invalid "doubling 0" (fun () -> Core.Lockstep.doubling_schedule 0));
    Alcotest.test_case "sim config validation" `Quick (fun () ->
        let algo : (unit, unit) Sim.algorithm =
          {
            init = (fun ~self:_ ~nprocs:_ -> ((), []));
            step = (fun ~self:_ ~nprocs:_ () ~sender:_ () -> ((), []));
          }
        in
        raises_invalid "fault array size" (fun () ->
            Sim.make_config ~nprocs:3 ~algorithm:algo ~faults:[| Sim.Correct |]
              ~scheduler:(Sim.constant_scheduler Rat.one) ~max_events:10 ());
        raises_invalid "byzantine without algorithm" (fun () ->
            Sim.make_config ~nprocs:1 ~algorithm:algo ~faults:[| Sim.Byzantine "" |]
              ~scheduler:(Sim.constant_scheduler Rat.one) ~max_events:10 ());
        raises_invalid "bad strategy name" (fun () ->
            Sim.make_config ~nprocs:1 ~algorithm:algo
              ~byzantine:(fun _ -> algo)
              ~faults:[| Sim.Byzantine "E Q" |]
              ~scheduler:(Sim.constant_scheduler Rat.one) ~max_events:10 ());
        raises_invalid "receive-omission j = 0" (fun () ->
            Sim.make_config ~nprocs:1 ~algorithm:algo
              ~faults:[| Sim.Receive_omission 0 |]
              ~scheduler:(Sim.constant_scheduler Rat.one) ~max_events:10 ());
        raises_invalid "recover k_up = 0" (fun () ->
            Sim.make_config ~nprocs:1 ~algorithm:algo
              ~faults:[| Sim.Recover (2, 0) |]
              ~scheduler:(Sim.constant_scheduler Rat.one) ~max_events:10 ());
        raises_invalid "plan: negative index" (fun () ->
            Sim.make_config ~nprocs:1 ~algorithm:algo ~plan:[ (-1, Sim.P_drop) ]
              ~faults:[| Sim.Correct |]
              ~scheduler:(Sim.constant_scheduler Rat.one) ~max_events:10 ());
        raises_invalid "plan: misdirect out of range" (fun () ->
            Sim.make_config ~nprocs:2 ~algorithm:algo
              ~plan:[ (0, Sim.P_misdirect 5) ]
              ~faults:[| Sim.Correct; Sim.Correct |]
              ~scheduler:(Sim.constant_scheduler Rat.one) ~max_events:10 ()));
    Alcotest.test_case "Crash 0 crashes before the wake-up" `Quick (fun () ->
        (* Pinned boundary semantics: a [Crash 0] process never takes
           its wake-up step, so its broadcast is lost and it owns no
           faithful-graph node — but its state is still the one [init]
           computes. *)
        let r =
          Sim.run
            (Sim.make_config ~nprocs:3 ~algorithm:chatter
               ~faults:[| Sim.Crash 0; Sim.Correct; Sim.Correct |]
               ~scheduler:(Sim.constant_scheduler Rat.one) ~max_events:60 ())
        in
        for i = 0 to Graph.event_count r.Sim.graph - 1 do
          Alcotest.(check bool) "no faithful node at p0" true
            ((Graph.event r.Sim.graph i).Event.proc <> 0)
        done;
        Array.iter
          (fun te ->
            Alcotest.(check bool) "no message from p0 delivered" true
              (te.Sim.tr_sender <> 0))
          r.Sim.trace;
        Alcotest.(check int) "p0 keeps its initial state" 0 r.Sim.final_states.(0);
        Alcotest.(check bool) "survivors still run" true
          (r.Sim.final_states.(1) > 0 && r.Sim.final_states.(2) > 0));
    Alcotest.test_case "cycle ratio on non-relevant cycles rejected" `Quick (fun () ->
        let g = Graph.create ~nprocs:1 in
        let a = Graph.add_event g ~proc:0 in
        let b = Graph.add_event g ~proc:0 in
        ignore (Graph.add_message g ~src:a.Event.id ~dst:b.Event.id);
        match Cycle.enumerate g with
        | [ c ] -> raises_invalid "ratio of non-relevant" (fun () -> Cycle.ratio c)
        | _ -> Alcotest.fail "expected one cycle");
  ]

let prop name count arb f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb f)

let property_tests =
  [
    prop "spanning_cycle threshold is exactly k2/k1" 60
      (QCheck.pair (QCheck.int_range 1 6) (QCheck.int_range 1 7))
      (fun (k1, k2) ->
        (* qcheck's int_range shrinker can escape its bounds; clamp *)
        let k1 = max 1 k1 and k2 = max 1 k2 in
        let g = Core.Scenarios.spanning_cycle ~k1 ~k2 () in
        (* admissible iff Xi > k2/k1: probe both sides of the boundary *)
        let r = Rat.of_ints k2 k1 in
        let above = Rat.max (Rat.add r (q 1 100)) (q 101 100) in
        let ok_above = Abc_check.is_admissible g ~xi:above in
        let ok_at =
          if Rat.compare r Rat.one > 0 then not (Abc_check.is_admissible g ~xi:r) else true
        in
        ok_above && ok_at);
    prop "deferring adversary never breaks admissibility" 12
      (QCheck.int_range 0 1000)
      (fun seed ->
        let xi = q (2 + (seed mod 3)) 1 in
        let cfg =
          Sim.make_config ~nprocs:4
            ~algorithm:(Core.Clock_sync.algorithm ~f:1)
            ~faults:(Array.make 4 Sim.Correct)
            ~scheduler:(Sim.constant_scheduler Rat.one)
            ~max_events:(120 + (seed mod 60))
            ()
        in
        let r =
          Sim.run_deferring cfg ~xi ~victim:(fun ~sender ~dst:_ -> sender = seed mod 4)
        in
        Abc_check.is_admissible r.Sim.graph ~xi && Graph.is_dag r.Sim.graph);
    prop "message accounting holds under every fault variant" 60
      (QCheck.int_range 0 1_000_000)
      (fun seed ->
        let seed = abs seed in
        let fault =
          match seed mod 6 with
          | 0 -> Sim.Correct
          | 1 -> Sim.Crash (seed / 6 mod 4)
          | 2 -> Sim.Send_omission (seed / 6 mod 4)
          | 3 -> Sim.Receive_omission (1 + (seed / 6 mod 3))
          | 4 -> Sim.Recover (seed / 6 mod 3, 1 + (seed / 6 mod 3))
          | _ -> Sim.Byzantine "mute"
        in
        let faults = Array.make 4 Sim.Correct in
        faults.(seed mod 4) <- fault;
        let plan =
          match seed mod 5 with
          | 0 -> []
          | 1 -> [ (seed mod 7, Sim.P_drop) ]
          | 2 -> [ (seed mod 7, Sim.P_duplicate Rat.one) ]
          | 3 -> [ (seed mod 7, Sim.P_misdirect (seed mod 4)) ]
          | _ -> [ (seed mod 7, Sim.P_delay (q 3 2)) ]
        in
        let silent : (int, int) Sim.algorithm =
          { init = (fun ~self:_ ~nprocs:_ -> (0, [])); step = (fun ~self:_ ~nprocs:_ s ~sender:_ _ -> (s, [])) }
        in
        let r =
          Sim.run
            (Sim.make_config ~nprocs:4 ~algorithm:chatter
               ~byzantine:(fun _ -> silent) ~plan ~faults
               ~scheduler:(Sim.constant_scheduler Rat.one) ~max_events:80 ())
        in
        r.Sim.posted = r.Sim.delivered + r.Sim.undelivered + r.Sim.dropped);
    prop "extended fault wire forms round-trip" 120
      (QCheck.int_range 0 1_000_000)
      (fun seed ->
        let seed = abs seed in
        let fault =
          match seed mod 6 with
          | 0 -> Sim.Correct
          | 1 -> Sim.Crash (seed / 6 mod 12)
          | 2 -> Sim.Send_omission (seed / 6 mod 12)
          | 3 -> Sim.Receive_omission (1 + (seed / 6 mod 9))
          | 4 -> Sim.Recover (seed / 6 mod 9, 1 + (seed / 6 mod 9))
          | _ ->
              let names = [| ""; "eq"; "lag2"; "rush3"; "mim1"; "rnd7" |] in
              Sim.Byzantine names.(seed / 6 mod Array.length names)
        in
        Sim.fault_of_string (Sim.fault_to_string fault) = Some fault);
    prop "fault plans round-trip through the wire form" 120
      (QCheck.int_range 0 1_000_000)
      (fun seed ->
        let seed = abs seed in
        let mix i = (seed * 48271) + (i * 2654435761) land 0x3FFFFFFF in
        let action i =
          let s = abs (mix i) in
          match s mod 4 with
          | 0 -> Sim.P_drop
          | 1 -> Sim.P_duplicate (q (1 + (s / 4 mod 5)) (1 + (s / 16 mod 3)))
          | 2 -> Sim.P_misdirect (s / 4 mod 4)
          | _ -> Sim.P_delay (q (s / 4 mod 7) (1 + (s / 16 mod 4)))
        in
        let stride = 1 + (seed mod 3) in
        let plan =
          List.init (seed mod 5) (fun i -> ((i * stride) + (seed mod 4), action i))
        in
        Sim.plan_of_string (Sim.plan_to_string plan) = Some plan);
  ]

let malformed_wire_tests =
  [
    Alcotest.test_case "malformed fault plans rejected" `Quick (fun () ->
        List.iter
          (fun s ->
            Alcotest.(check bool) (Printf.sprintf "rejected %S" s) true
              (Sim.plan_of_string s = None))
          [
            "5";
            "5:";
            ":drop";
            "5:zap";
            "x:drop";
            "5:dl";
            "5:to";
            "5:toX";
            "5:dup";
            "5:dup1/0";
            "5:drop,5:dup1";
            "5:drop,";
            ",";
            "-1:drop";
          ]);
  ]

let suite = unit_tests @ malformed_wire_tests @ property_tests
