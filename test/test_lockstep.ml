(* Tests for Algorithm 2 (lock-step round simulation): Theorem 5 under
   Θ schedulers with crash and Byzantine faults. *)

open Core

let q = Rat.of_ints

let run_lockstep ?(seed = 11) ?(nprocs = 4) ?(f = 1) ?(xi = q 5 2) ?(max_events = 600)
    ?(faults = None) ?(byz = None) algo =
  let rng = Random.State.make [| seed |] in
  let scheduler = Sim.theta_scheduler ~rng ~tau_minus:(q 1 1) ~tau_plus:(q 2 1) () in
  let faults = match faults with Some fs -> fs | None -> Array.make nprocs Sim.Correct in
  let cfg =
    Sim.make_config ?byzantine:byz ~nprocs
      ~algorithm:(Lockstep.algorithm ~f ~xi algo)
      ~faults ~scheduler ~max_events ()
  in
  (Sim.run cfg, xi)

let correct_of faults =
  List.filter (fun p -> faults.(p) = Sim.Correct) (List.init (Array.length faults) Fun.id)

(* a byzantine lockstep participant: correct clock-sync behaviour but
   garbage round payloads (value lies) *)
let lying_round_algo : (int, int) Lockstep.round_algo =
  {
    r_init = (fun ~self ~nprocs:_ -> (0, 1000 + self));
    r_step = (fun ~self ~nprocs:_ ~round n _ -> (n, (1000 * round) + self));
  }

let counting_round_algo : (int, int) Lockstep.round_algo =
  {
    r_init = (fun ~self:_ ~nprocs:_ -> (0, 0));
    r_step = (fun ~self:_ ~nprocs:_ ~round n _ -> (n + 1, round));
  }

let unit_tests =
  [
    Alcotest.test_case "thm5: rounds advance and stay lock-step (fault-free)" `Quick
      (fun () ->
        let result, _ = run_lockstep Lockstep.noop_round_algo in
        let correct = [ 0; 1; 2; 3 ] in
        let rounds = Lockstep.rounds_reached result ~correct in
        List.iter
          (fun (p, r) ->
            Alcotest.(check bool) (Printf.sprintf "p%d reached rounds" p) true (r >= 2))
          rounds;
        let checked, violations = Lockstep.lockstep_violations result ~correct in
        Alcotest.(check bool) "nontrivial" true (checked > 0);
        Alcotest.(check int) "no violations" 0 (List.length violations));
    Alcotest.test_case "thm5: lock-step with a crash fault" `Quick (fun () ->
        let faults = [| Sim.Correct; Sim.Correct; Sim.Correct; Sim.Crash 15 |] in
        let result, _ = run_lockstep ~faults:(Some faults) Lockstep.noop_round_algo in
        let correct = correct_of faults in
        let checked, violations = Lockstep.lockstep_violations result ~correct in
        Alcotest.(check bool) "nontrivial" true (checked > 0);
        Alcotest.(check int) "no violations" 0 (List.length violations));
    Alcotest.test_case "thm5: lock-step with a byzantine liar" `Quick (fun () ->
        let faults = [| Sim.Correct; Sim.Correct; Sim.Correct; Sim.Byzantine "liar" |] in
        let byz = Lockstep.algorithm ~f:1 ~xi:(q 5 2) lying_round_algo in
        let result, _ =
          run_lockstep ~faults:(Some faults) ~byz:(Some (fun _ -> byz)) counting_round_algo
        in
        let correct = correct_of faults in
        let checked, violations = Lockstep.lockstep_violations result ~correct in
        Alcotest.(check bool) "nontrivial" true (checked > 0);
        Alcotest.(check int) "no violations" 0 (List.length violations);
        (* correct processes performed one round step per round *)
        List.iter
          (fun p ->
            let st = result.Sim.final_states.(p) in
            Alcotest.(check int)
              (Printf.sprintf "p%d steps = rounds" p)
              (Lockstep.round_of st)
              (Lockstep.round_state st))
          correct);
    Alcotest.test_case "phase length is ceil(2Xi)" `Quick (fun () ->
        Alcotest.(check int) "2Xi=5" 5 (Lockstep.phase_length ~xi:(q 5 2));
        Alcotest.(check int) "2Xi=4" 4 (Lockstep.phase_length ~xi:(q 2 1));
        Alcotest.(check int) "2Xi=3" 3 (Lockstep.phase_length ~xi:(q 3 2)));
    Alcotest.test_case "round messages reach everyone within the window" `Quick (fun () ->
        (* each correct process's history shows a full quorum of
           senders for every started round in the fault-free case *)
        let result, _ = run_lockstep ~max_events:800 counting_round_algo in
        List.iter
          (fun p ->
            let st = result.Sim.final_states.(p) in
            List.iter
              (fun (rho, senders) ->
                if rho >= 1 then
                  Alcotest.(check int)
                    (Printf.sprintf "p%d round %d sees all" p rho)
                    4
                    (Lockstep.Iset.cardinal senders))
              st.Lockstep.history)
          [ 0; 1; 2; 3 ]);
  ]

let macro_tests =
  [
    Alcotest.test_case "macro clocks: rounds of correct processes differ by <= 1" `Quick
      (fun () ->
        (* the paper's optimal-precision "macro clock" remark: rounds
           are clocks divided by P = ceil(2Xi), and Theorem 2's 2Xi
           bound on micro clocks collapses to precision 1 on rounds *)
        List.iter
          (fun seed ->
            let result, _ = run_lockstep ~seed ~max_events:500 Lockstep.noop_round_algo in
            let rounds = List.map snd (Lockstep.rounds_reached result ~correct:[ 0; 1; 2; 3 ]) in
            let spread =
              List.fold_left max min_int rounds - List.fold_left min max_int rounds
            in
            Alcotest.(check bool) (Printf.sprintf "seed %d spread <= 1" seed) true (spread <= 1))
          [ 1; 2; 3; 4; 5 ]);
    Alcotest.test_case "uniform lock-step: crashed process's pre-crash rounds comply" `Quick
      (fun () ->
        (* remark after Theorem 5: lock-step is uniform for crash
           faults — rounds started before the crash also satisfy the
           property, so including the crashed process in the check
           still yields zero violations *)
        let faults = [| Sim.Correct; Sim.Correct; Sim.Correct; Sim.Crash 40 |] in
        let result, _ = run_lockstep ~faults:(Some faults) ~max_events:600 Lockstep.noop_round_algo in
        let checked, violations = Lockstep.lockstep_violations result ~correct:[ 0; 1; 2; 3 ] in
        Alcotest.(check bool) "nontrivial" true (checked > 0);
        Alcotest.(check int) "no violations" 0 (List.length violations));
  ]

let prop name count arb f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb f)

let arb_seed = QCheck.make ~print:string_of_int QCheck.Gen.(int_range 0 100000)

let property_tests =
  [
    prop "thm5 across seeds and fault mixes" 10 arb_seed (fun seed ->
        let faults =
          if seed mod 2 = 0 then [| Sim.Correct; Sim.Correct; Sim.Correct; Sim.Correct |]
          else [| Sim.Correct; Sim.Correct; Sim.Correct; Sim.Crash (seed mod 20) |]
        in
        let result, _ =
          run_lockstep ~seed ~faults:(Some faults) ~max_events:500 Lockstep.noop_round_algo
        in
        let correct = correct_of faults in
        snd (Lockstep.lockstep_violations result ~correct) = []);
  ]

let suite = unit_tests @ macro_tests @ property_tests
