(* Unit and property tests for exact rationals and the ε-extension. *)

let q = Rat.of_ints
let check_str msg expected actual = Alcotest.(check string) msg expected (Rat.to_string actual)

let gen_rat =
  let open QCheck.Gen in
  map2
    (fun n d ->
      let d = if d = 0 then 1 else d in
      Rat.of_ints n d)
    (int_range (-10000) 10000)
    (int_range (-100) 100)

let arb_rat = QCheck.make ~print:Rat.to_string gen_rat

let arb_nonzero_rat =
  QCheck.make ~print:Rat.to_string
    (QCheck.Gen.map (fun x -> if Rat.is_zero x then Rat.one else x) gen_rat)

let unit_tests =
  [
    Alcotest.test_case "canonical form" `Quick (fun () ->
        check_str "2/4" "1/2" (q 2 4);
        check_str "-2/-4" "1/2" (q (-2) (-4));
        check_str "2/-4" "-1/2" (q 2 (-4));
        check_str "0/7" "0" (q 0 7);
        check_str "6/3" "2" (q 6 3));
    Alcotest.test_case "arithmetic samples" `Quick (fun () ->
        check_str "1/2+1/3" "5/6" (Rat.add (q 1 2) (q 1 3));
        check_str "1/2-1/3" "1/6" (Rat.sub (q 1 2) (q 1 3));
        check_str "2/3*3/4" "1/2" (Rat.mul (q 2 3) (q 3 4));
        check_str "(1/2)/(1/3)" "3/2" (Rat.div (q 1 2) (q 1 3));
        check_str "inv -2/3" "-3/2" (Rat.inv (q (-2) 3)));
    Alcotest.test_case "of_string forms" `Quick (fun () ->
        check_str "frac" "3/2" (Rat.of_string "3/2");
        check_str "int" "7" (Rat.of_string "7");
        check_str "decimal" "3/2" (Rat.of_string "1.5");
        check_str "neg decimal" "-5/4" (Rat.of_string "-1.25");
        check_str "unreduced frac" "5/2" (Rat.of_string "10/4");
        check_str "double negative" "3/2" (Rat.of_string "-6/-4");
        check_str "bare fraction part" "1/2" (Rat.of_string ".5");
        check_str "neg bare fraction" "-1/2" (Rat.of_string "-.5");
        check_str "explicit plus" "3" (Rat.of_string "+3"));
    Alcotest.test_case "of_string rejected forms" `Quick (fun () ->
        let rejects s =
          match Rat.of_string s with
          | x -> Alcotest.failf "%S parsed to %s" s (Rat.to_string x)
          | exception (Invalid_argument _ | Division_by_zero) -> ()
        in
        List.iter rejects [ ""; "abc"; "1/0"; "1//2"; "1.2.3"; "1/ 2" ]);
    Alcotest.test_case "floor/ceil" `Quick (fun () ->
        Alcotest.(check int) "floor 7/2" 3 (Rat.floor_int (q 7 2));
        Alcotest.(check int) "ceil 7/2" 4 (Rat.ceil_int (q 7 2));
        Alcotest.(check int) "floor -7/2" (-4) (Rat.floor_int (q (-7) 2));
        Alcotest.(check int) "ceil -7/2" (-3) (Rat.ceil_int (q (-7) 2));
        Alcotest.(check int) "floor 4" 4 (Rat.floor_int (q 4 1)));
    Alcotest.test_case "compare" `Quick (fun () ->
        Alcotest.(check bool) "1/3 < 1/2" true Rat.O.(q 1 3 < q 1 2);
        Alcotest.(check bool) "-1/2 < -1/3" true Rat.O.(q (-1) 2 < q (-1) 3);
        Alcotest.(check bool) "2/4 = 1/2" true (Rat.equal (q 2 4) (q 1 2)));
    Alcotest.test_case "epsilon ordering" `Quick (fun () ->
        let open Rat.Eps in
        Alcotest.(check bool) "eps > 0" true (compare epsilon zero > 0);
        Alcotest.(check bool) "eps < any positive rational" true
          (compare epsilon (of_rat (q 1 1000000)) < 0);
        Alcotest.(check bool) "1 < 1 + eps" true
          (compare one (add one epsilon) < 0);
        Alcotest.(check bool) "1 - eps < 1" true (compare (sub one epsilon) one < 0));
    Alcotest.test_case "epsilon standardization" `Quick (fun () ->
        let x = Rat.Eps.make (q 3 2) (q (-2) 1) in
        check_str "subst 1/8" "5/4" (Rat.Eps.standardize_with (q 1 8) x));
  ]

let prop name count arb f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb f)

let property_tests =
  [
    prop "canonical: gcd(num,den)=1, den>0" 500 arb_rat (fun x ->
        Bigint.is_positive (Rat.den x)
        && (Rat.is_zero x || Bigint.is_one (Bigint.gcd (Rat.num x) (Rat.den x))));
    prop "field: add/sub inverse" 300 (QCheck.pair arb_rat arb_rat) (fun (x, y) ->
        Rat.equal x (Rat.sub (Rat.add x y) y));
    prop "field: mul/div inverse" 300 (QCheck.pair arb_rat arb_nonzero_rat)
      (fun (x, y) -> Rat.equal x (Rat.div (Rat.mul x y) y));
    prop "distributivity" 300 (QCheck.triple arb_rat arb_rat arb_rat) (fun (x, y, z) ->
        Rat.equal (Rat.mul x (Rat.add y z)) (Rat.add (Rat.mul x y) (Rat.mul x z)));
    prop "string roundtrip" 300 arb_rat (fun x ->
        Rat.equal x (Rat.of_string (Rat.to_string x)));
    prop "floor <= x < floor+1" 300 arb_rat (fun x ->
        let f = Rat.of_bigint (Rat.floor x) in
        Rat.O.(f <= x) && Rat.O.(x < Rat.add f Rat.one));
    prop "ceil = -floor(-x)" 300 arb_rat (fun x ->
        Bigint.equal (Rat.ceil x) (Bigint.neg (Rat.floor (Rat.neg x))));
    prop "compare consistent with sub sign" 300 (QCheck.pair arb_rat arb_rat)
      (fun (x, y) -> Rat.compare x y = Rat.sign (Rat.sub x y));
    prop "to_float approximates" 300 arb_rat (fun x ->
        let f = Rat.to_float x in
        abs_float (f -. (float_of_int (Bigint.to_int_exn (Rat.num x))
                         /. float_of_int (Bigint.to_int_exn (Rat.den x))))
        < 1e-9);
    prop "eps: lexicographic vs standardization with tiny e" 300
      (QCheck.pair (QCheck.pair arb_rat arb_rat) (QCheck.pair arb_rat arb_rat))
      (fun ((a, b), (c, d)) ->
        (* For small enough concrete e, the lexicographic order agrees
           with the standardized order (strictly, when not equal). *)
        let x = Rat.Eps.make a b and y = Rat.Eps.make c d in
        let cmp = Rat.Eps.compare x y in
        if cmp = 0 then true
        else begin
          let e = q 1 100000000 in
          let e =
            (* shrink e below |a-c| / (|b|+|d|+1) to be safe *)
            let diff = Rat.abs (Rat.sub a c) in
            if Rat.is_zero diff then e
            else Rat.min e (Rat.div diff (Rat.add (Rat.add (Rat.abs b) (Rat.abs d)) Rat.two))
          in
          let sx = Rat.Eps.standardize_with e x and sy = Rat.Eps.standardize_with e y in
          compare (Rat.compare sx sy) 0 = compare cmp 0
        end);
  ]

let suite = unit_tests @ property_tests
