(* Tests for the property-based fuzzer: serialization round-trips,
   campaign determinism, the bounded smoke campaign the acceptance of
   the oracles rests on, and shrinking demonstrated against an
   intentionally broken test-only oracle. *)

open Fuzz

let roundtrip_tests =
  [
    Alcotest.test_case "to_string/of_string round-trip, 100 seeds" `Quick (fun () ->
        for seed = 0 to 99 do
          let c = Gen.generate ~seed in
          let line = Replay.to_string c in
          match Replay.of_string line with
          | Ok c' ->
              if c' <> c then
                Alcotest.failf "seed %d: round-trip changed the case: %s" seed line
          | Error e -> Alcotest.failf "seed %d: %s does not parse back: %s" seed line e
        done);
    Alcotest.test_case "generated cases validate" `Quick (fun () ->
        for seed = 100 to 199 do
          match Gen.validate (Gen.generate ~seed) with
          | Ok _ -> ()
          | Error e -> Alcotest.failf "seed %d generates an invalid case: %s" seed e
        done);
    Alcotest.test_case "of_string is total on malformed input" `Quick (fun () ->
        List.iter
          (fun s ->
            match Replay.of_string s with
            | Error _ -> ()
            | Ok _ -> Alcotest.failf "%S should not parse" s)
          [
            "";
            "garbage";
            "abc9;s=1;n=4;f=C,C,C,C;xi=2;w=clock;d=theta:1:2;e=100";
            "abc1;s=1;n=4;f=C,C,C;xi=2;w=clock;d=theta:1:2;e=100" (* size *);
            "abc1;s=1;n=4;f=C,C,C,C;xi=1;w=clock;d=theta:1:2;e=100" (* Xi<=1 *);
            "abc1;s=1;n=4;f=C,C,C,C;xi=2;w=tea;d=theta:1:2;e=100";
            "abc1;s=1;n=4;f=C,C,C,C;xi=2;w=clock;d=theta:1;e=100";
            "abc1;s=1;n=4;f=C,C,C,B;xi=2;w=eig;d=defer:0:1;e=100" (* defer+eig *);
          ]);
  ]

let determinism_tests =
  [
    Alcotest.test_case "same seed, same report" `Quick (fun () ->
        let report () =
          Report.render (Campaign.run ~shrink:false ~cases:10 ~seed:2026 ())
        in
        let a = report () and b = report () in
        Alcotest.(check string) "byte-identical reports" a b);
    Alcotest.test_case "different seeds differ" `Quick (fun () ->
        let report seed =
          Report.render (Campaign.run ~shrink:false ~cases:5 ~seed ())
        in
        Alcotest.(check bool) "distinct case sets" false (report 1 = report 2));
  ]

let smoke_tests =
  [
    Alcotest.test_case "100-case campaign: no violations, >= 4 families" `Slow
      (fun () ->
        let o = Campaign.run ~shrink:false ~cases:100 ~seed:1 () in
        Alcotest.(check int) "all cases ran" 100 o.Campaign.cp_cases_run;
        (match o.Campaign.cp_failures with
        | [] -> ()
        | f :: _ ->
            Alcotest.failf "oracle %s failed: %s\n  repro: %s" f.Campaign.fl_oracle
              f.Campaign.fl_detail
              (Replay.repro_command f.Campaign.fl_case));
        Alcotest.(check bool)
          "scheduler diversity" true
          (List.length o.Campaign.cp_families >= 4);
        (* every oracle must achieve real (non-vacuous) coverage *)
        List.iter
          (fun (name, s) ->
            if s.Campaign.os_pass = 0 then
              Alcotest.failf "oracle %s never passed (vacuous coverage)" name)
          o.Campaign.cp_stats);
  ]

(* An intentionally broken test-only oracle: fails as soon as the run
   simulated any event at all, so every case is a counterexample and
   the shrinker must descend to the structural minimum. *)
let broken_oracle =
  {
    Oracle.name = "test-no-events";
    theorem = "test-only: no run may simulate any event";
    check =
      (fun ctx ->
        let d = Gen.delivered_of_run ctx.Oracle.run in
        if d > 0 then Oracle.Fail (Printf.sprintf "%d events simulated" d)
        else Oracle.Pass);
  }

let shrink_tests =
  [
    Alcotest.test_case "broken oracle shrinks to a tiny case" `Quick (fun () ->
        let case = Gen.generate ~seed:3 in
        let results = Oracle.evaluate [ broken_oracle ] case in
        Alcotest.(check bool)
          "original case fails" true
          (List.mem_assoc "test-no-events" (Oracle.failures results));
        let r =
          Shrink.shrink ~oracles:[ broken_oracle ] ~oracle:"test-no-events" case
        in
        Alcotest.(check bool)
          "shrunk to <= 6 events" true
          (r.Shrink.shrunk.Gen.c_max_events <= 6);
        Alcotest.(check bool)
          "shrunk to the minimal process count" true
          (r.Shrink.shrunk.Gen.c_nprocs <= 3);
        Alcotest.(check int) "no faults left" 0 (Gen.nfaulty r.Shrink.shrunk));
    Alcotest.test_case "shrunk case replays and re-fails" `Quick (fun () ->
        let case = Gen.generate ~seed:3 in
        let r =
          Shrink.shrink ~oracles:[ broken_oracle ] ~oracle:"test-no-events" case
        in
        match Replay.replay ~oracles:[ broken_oracle ] (Replay.to_string r.Shrink.shrunk) with
        | Error e -> Alcotest.failf "shrunk case does not replay: %s" e
        | Ok (c, results) ->
            Alcotest.(check bool) "same case back" true (c = r.Shrink.shrunk);
            Alcotest.(check bool)
              "still fails the same oracle" true
              (List.mem_assoc "test-no-events" (Oracle.failures results)));
    Alcotest.test_case "candidates are valid and strictly different" `Quick
      (fun () ->
        for seed = 0 to 30 do
          let c = Gen.generate ~seed in
          List.iter
            (fun c' ->
              if c' = c then Alcotest.failf "seed %d: identity candidate" seed;
              match Gen.validate c' with
              | Ok _ -> ()
              | Error e -> Alcotest.failf "seed %d: invalid candidate: %s" seed e)
            (Shrink.candidates c)
        done);
  ]

let suite = roundtrip_tests @ determinism_tests @ smoke_tests @ shrink_tests
