(* Tests for the property-based fuzzer: serialization round-trips,
   campaign determinism, the bounded smoke campaign the acceptance of
   the oracles rests on, and shrinking demonstrated against an
   intentionally broken test-only oracle. *)

open Fuzz

let roundtrip_tests =
  [
    Alcotest.test_case "to_string/of_string round-trip, 100 seeds" `Quick (fun () ->
        for seed = 0 to 99 do
          let c = Gen.generate ~seed in
          let line = Replay.to_string c in
          match Replay.of_string line with
          | Ok c' ->
              if c' <> c then
                Alcotest.failf "seed %d: round-trip changed the case: %s" seed line
          | Error e -> Alcotest.failf "seed %d: %s does not parse back: %s" seed line e
        done);
    Alcotest.test_case "boundary cases round-trip and validate" `Quick (fun () ->
        for seed = 300 to 349 do
          let c = Gen.generate_boundary ~seed in
          (match Gen.validate c with
          | Ok _ -> ()
          | Error e -> Alcotest.failf "seed %d: invalid boundary case: %s" seed e);
          if not c.Gen.c_boundary then
            Alcotest.failf "seed %d: boundary flag not set" seed;
          if c.Gen.c_nprocs <> 3 * Gen.nfaulty c then
            Alcotest.failf "seed %d: boundary case is not at n = 3f" seed;
          let line = Replay.to_string c in
          match Replay.of_string line with
          | Ok c' ->
              if c' <> c then
                Alcotest.failf "seed %d: boundary round-trip changed the case: %s" seed
                  line
          | Error e -> Alcotest.failf "seed %d: %s does not parse back: %s" seed line e
        done);
    Alcotest.test_case "generated cases validate" `Quick (fun () ->
        for seed = 100 to 199 do
          match Gen.validate (Gen.generate ~seed) with
          | Ok _ -> ()
          | Error e -> Alcotest.failf "seed %d generates an invalid case: %s" seed e
        done);
    Alcotest.test_case "of_string is total on malformed input" `Quick (fun () ->
        List.iter
          (fun s ->
            match Replay.of_string s with
            | Error _ -> ()
            | Ok _ -> Alcotest.failf "%S should not parse" s)
          [
            "";
            "garbage";
            "abc9;s=1;n=4;f=C,C,C,C;xi=2;w=clock;d=theta:1:2;e=100";
            "abc1;s=1;n=4;f=C,C,C;xi=2;w=clock;d=theta:1:2;e=100" (* size *);
            "abc1;s=1;n=4;f=C,C,C,C;xi=1;w=clock;d=theta:1:2;e=100" (* Xi<=1 *);
            "abc1;s=1;n=4;f=C,C,C,C;xi=2;w=tea;d=theta:1:2;e=100";
            "abc1;s=1;n=4;f=C,C,C,C;xi=2;w=clock;d=theta:1;e=100";
            "abc1;s=1;n=4;f=C,C,C,B;xi=2;w=eig;d=defer:0:1;e=100" (* defer+eig *);
            "abc1;s=1;n=4;f=C,C,C,C;xi=2;w=clock;d=theta:1:2;e=100;p="
            (* empty p field: omit instead *);
            "abc1;s=1;n=4;f=C,C,C,C;xi=2;w=clock;d=theta:1:2;e=100;p=5:zap";
            "abc1;s=1;n=4;f=C,C,C,C;xi=2;w=clock;d=theta:1:2;e=100;b=2";
            "abc1;s=1;n=4;f=C,C,C,Beq;xi=2;w=clock;d=defer:0:1;e=100;b=1"
            (* boundary flag off the n = 3f line *);
          ]);
  ]

let determinism_tests =
  [
    Alcotest.test_case "same seed, same report" `Quick (fun () ->
        let report () =
          Report.render (Campaign.run ~shrink:false ~cases:10 ~seed:2026 ())
        in
        let a = report () and b = report () in
        Alcotest.(check string) "byte-identical reports" a b);
    Alcotest.test_case "different seeds differ" `Quick (fun () ->
        let report seed =
          Report.render (Campaign.run ~shrink:false ~cases:5 ~seed ())
        in
        Alcotest.(check bool) "distinct case sets" false (report 1 = report 2));
  ]

let smoke_tests =
  [
    Alcotest.test_case "100-case campaign: no violations, >= 4 families" `Slow
      (fun () ->
        let o = Campaign.run ~shrink:false ~cases:100 ~seed:1 () in
        Alcotest.(check int) "all cases ran" 100 o.Campaign.cp_cases_run;
        (match o.Campaign.cp_failures with
        | [] -> ()
        | f :: _ ->
            Alcotest.failf "oracle %s failed: %s\n  repro: %s" f.Campaign.fl_oracle
              f.Campaign.fl_detail
              (Replay.repro_command f.Campaign.fl_case));
        Alcotest.(check bool)
          "scheduler diversity" true
          (List.length o.Campaign.cp_families >= 4);
        (* every oracle must achieve real (non-vacuous) coverage —
           except the boundary-* oracles, which by design only apply to
           the n = 3f cases of a boundary campaign and skip here *)
        List.iter
          (fun (name, s) ->
            let boundary =
              String.length name >= 9 && String.sub name 0 9 = "boundary-"
            in
            if boundary then begin
              if s.Campaign.os_skip = 0 then
                Alcotest.failf "boundary oracle %s never even skipped" name
            end
            else if s.Campaign.os_pass = 0 then
              Alcotest.failf "oracle %s never passed (vacuous coverage)" name)
          o.Campaign.cp_stats);
    Alcotest.test_case "boundary campaign witnesses both violation kinds" `Slow
      (fun () ->
        let o = Campaign.run ~shrink:false ~boundary:true ~cases:50 ~seed:1 () in
        let fails name =
          match List.assoc_opt name o.Campaign.cp_stats with
          | Some s -> s.Campaign.os_fail
          | None -> Alcotest.failf "oracle %s missing from the registry" name
        in
        Alcotest.(check bool) "precision violated at n = 3f" true
          (fails "boundary-precision" > 0);
        Alcotest.(check bool) "EIG agreement violated at n = 3f" true
          (fails "boundary-agreement" > 0);
        (* positive oracles must not fire on boundary cases: every
           failure of a boundary campaign names a boundary-* oracle *)
        List.iter
          (fun f ->
            if
              not
                (String.length f.Campaign.fl_oracle >= 9
                && String.sub f.Campaign.fl_oracle 0 9 = "boundary-")
            then
              Alcotest.failf "non-boundary oracle %s fired on a boundary case: %s"
                f.Campaign.fl_oracle f.Campaign.fl_detail)
          o.Campaign.cp_failures;
        (* each witness replays byte-identically and re-fails *)
        List.iter
          (fun f ->
            let line = Replay.to_string f.Campaign.fl_case in
            match Replay.replay line with
            | Error e -> Alcotest.failf "witness does not replay: %s" e
            | Ok (c, results) ->
                Alcotest.(check string) "byte-identical replay line" line
                  (Replay.to_string c);
                if not (List.mem_assoc f.Campaign.fl_oracle (Oracle.failures results))
                then
                  Alcotest.failf "replayed witness no longer fails %s"
                    f.Campaign.fl_oracle)
          o.Campaign.cp_failures);
  ]

(* An intentionally broken test-only oracle: fails as soon as the run
   simulated any event at all, so every case is a counterexample and
   the shrinker must descend to the structural minimum. *)
let broken_oracle =
  {
    Oracle.name = "test-no-events";
    theorem = "test-only: no run may simulate any event";
    check =
      (fun ctx ->
        let d = Gen.delivered_of_run ctx.Oracle.run in
        if d > 0 then Oracle.Fail (Printf.sprintf "%d events simulated" d)
        else Oracle.Pass);
  }

let shrink_tests =
  [
    Alcotest.test_case "broken oracle shrinks to a tiny case" `Quick (fun () ->
        let case = Gen.generate ~seed:3 in
        let results = Oracle.evaluate [ broken_oracle ] case in
        Alcotest.(check bool)
          "original case fails" true
          (List.mem_assoc "test-no-events" (Oracle.failures results));
        let r =
          Shrink.shrink ~oracles:[ broken_oracle ] ~oracle:"test-no-events" case
        in
        Alcotest.(check bool)
          "shrunk to <= 6 events" true
          (r.Shrink.shrunk.Gen.c_max_events <= 6);
        Alcotest.(check bool)
          "shrunk to the minimal process count" true
          (r.Shrink.shrunk.Gen.c_nprocs <= 3);
        Alcotest.(check int) "no faults left" 0 (Gen.nfaulty r.Shrink.shrunk));
    Alcotest.test_case "shrunk case replays and re-fails" `Quick (fun () ->
        let case = Gen.generate ~seed:3 in
        let r =
          Shrink.shrink ~oracles:[ broken_oracle ] ~oracle:"test-no-events" case
        in
        match Replay.replay ~oracles:[ broken_oracle ] (Replay.to_string r.Shrink.shrunk) with
        | Error e -> Alcotest.failf "shrunk case does not replay: %s" e
        | Ok (c, results) ->
            Alcotest.(check bool) "same case back" true (c = r.Shrink.shrunk);
            Alcotest.(check bool)
              "still fails the same oracle" true
              (List.mem_assoc "test-no-events" (Oracle.failures results)));
    Alcotest.test_case "shrinking preserves boundary witnesses" `Slow (fun () ->
        (* the two golden witness lines: shrinking must keep the case
           failing the same boundary oracle (and keep it valid) *)
        List.iter
          (fun (line, oracle) ->
            match Replay.of_string line with
            | Error e -> Alcotest.failf "witness line does not parse: %s" e
            | Ok case ->
                let r = Shrink.shrink ~oracles:Oracle.registry ~oracle case in
                (match Gen.validate r.Shrink.shrunk with
                | Ok _ -> ()
                | Error e -> Alcotest.failf "shrunk witness invalid: %s" e);
                let results = Oracle.evaluate Oracle.registry r.Shrink.shrunk in
                if not (List.mem_assoc oracle (Oracle.failures results)) then
                  Alcotest.failf "shrunk case no longer fails %s: %s" oracle
                    (Replay.to_string r.Shrink.shrunk))
          [
            ( "abc1;s=515953530;n=3;f=C,C,Beq;xi=5/2;w=eig;d=theta:1:2;e=500;b=1",
              "boundary-agreement" );
            ( "abc1;s=1054795105;n=3;f=C,C,Beq;xi=5/2;w=clock;d=defer:0:1;e=116;b=1",
              "boundary-precision" );
          ]);
    Alcotest.test_case "candidates are valid and strictly different" `Quick
      (fun () ->
        for seed = 0 to 30 do
          let c = Gen.generate ~seed in
          List.iter
            (fun c' ->
              if c' = c then Alcotest.failf "seed %d: identity candidate" seed;
              match Gen.validate c' with
              | Ok _ -> ()
              | Error e -> Alcotest.failf "seed %d: invalid candidate: %s" seed e)
            (Shrink.candidates c)
        done);
  ]

let select_tests =
  [
    Alcotest.test_case "oracle selection resolves known names in order" `Quick
      (fun () ->
        match Oracle.select "delay-assignment,clock-progress" with
        | Error e -> Alcotest.failf "valid names rejected: %s" e
        | Ok os -> (
            (* registry order, not mention order *)
            match List.map (fun (o : Oracle.t) -> o.Oracle.name) os with
            | [ "clock-progress"; "delay-assignment" ] -> ()
            | names ->
                Alcotest.failf "wrong selection: %s" (String.concat "," names)));
    Alcotest.test_case "no-crash is accepted but selects no registry oracle"
      `Quick (fun () ->
        match Oracle.select "no-crash" with
        | Ok [] -> ()
        | Ok _ -> Alcotest.fail "no-crash selected a registry oracle"
        | Error e -> Alcotest.failf "no-crash rejected: %s" e);
    Alcotest.test_case "unknown oracle names fail with the valid list" `Quick
      (fun () ->
        match Oracle.select "clock-progress,flux-capacitor" with
        | Ok _ -> Alcotest.fail "unknown oracle name accepted"
        | Error e ->
            let contains needle hay =
              let nl = String.length needle and hl = String.length hay in
              let rec go i =
                i + nl <= hl && (String.sub hay i nl = needle || go (i + 1))
              in
              go 0
            in
            if not (contains "flux-capacitor" e) then
              Alcotest.failf "error does not name the offender: %s" e;
            if not (contains "valid names" e && contains "clock-progress" e)
            then Alcotest.failf "error does not list valid names: %s" e);
  ]

let suite =
  roundtrip_tests @ determinism_tests @ smoke_tests @ shrink_tests
  @ select_tests
