(* Tests for Algorithm 1 (clock synchronization): Theorems 1-4 and
   Lemma 4, under Θ and targeted schedulers, with crash and Byzantine
   faults. *)

open Core

let xi a b = Rat.of_ints a b
let q = Rat.of_ints

let run ?(seed = 7) ?(nprocs = 4) ?(f = 1) ?(max_events = 400)
    ?(faults = None) ?(byz = None) ?(tau = (1, 2)) () =
  let rng = Random.State.make [| seed |] in
  let tau_minus, tau_plus = tau in
  let scheduler =
    Sim.theta_scheduler ~rng ~tau_minus:(q tau_minus 1) ~tau_plus:(q tau_plus 1) ()
  in
  let faults =
    match faults with Some fs -> fs | None -> Array.make nprocs Sim.Correct
  in
  let cfg =
    Sim.make_config ?byzantine:byz ~nprocs ~algorithm:(Clock_sync.algorithm ~f) ~faults
      ~scheduler ~max_events ()
  in
  Sim.run cfg

let correct_of faults =
  List.filter (fun p -> faults.(p) = Sim.Correct) (List.init (Array.length faults) Fun.id)

let unit_tests =
  [
    Alcotest.test_case "thm1: progress, fault-free n=4" `Quick (fun () ->
        let result = run () in
        Array.iter
          (fun st ->
            Alcotest.(check bool) "clock grew" true (Clock_sync.clock st > 5))
          result.Sim.final_states);
    Alcotest.test_case "thm1: progress with f=1 crash, n=4" `Quick (fun () ->
        let faults = [| Sim.Correct; Sim.Correct; Sim.Correct; Sim.Crash 3 |] in
        let result = run ~faults:(Some faults) () in
        List.iter
          (fun p ->
            Alcotest.(check bool) "correct clock grew" true
              (Clock_sync.clock result.Sim.final_states.(p) > 5))
          (correct_of faults));
    Alcotest.test_case "thm1: progress with f=1 byzantine rusher, n=4" `Quick (fun () ->
        let faults = [| Sim.Correct; Sim.Correct; Sim.Correct; Sim.Byzantine "rush" |] in
        let result =
          run ~faults:(Some faults) ~byz:(Some (fun _ -> Clock_sync.byzantine_rusher ~ahead:7)) ()
        in
        List.iter
          (fun p ->
            Alcotest.(check bool) "correct clock grew" true
              (Clock_sync.clock result.Sim.final_states.(p) > 5))
          (correct_of faults));
    Alcotest.test_case "thm2: skew on cuts <= 2Xi (fault-free)" `Quick (fun () ->
        (* Θ scheduler with ratio 2; any Xi > 2 admits the execution *)
        let result = run ~max_events:250 () in
        let x = xi 5 2 in
        let input = { Clock_sync.result; correct = [ 0; 1; 2; 3 ]; xi = x } in
        let bound = Rat.floor_int (Rat.mul Rat.two x) in
        let skew = Clock_sync.max_skew_on_cuts input in
        Alcotest.(check bool)
          (Printf.sprintf "skew %d <= %d" skew bound)
          true (skew <= bound));
    Alcotest.test_case "thm2: skew bound with byzantine rusher" `Quick (fun () ->
        let faults = [| Sim.Correct; Sim.Correct; Sim.Correct; Sim.Byzantine "rush" |] in
        let result =
          run ~faults:(Some faults) ~max_events:250
            ~byz:(Some (fun _ -> Clock_sync.byzantine_rusher ~ahead:9)) ()
        in
        let x = xi 5 2 in
        let input = { Clock_sync.result; correct = [ 0; 1; 2 ]; xi = x } in
        let skew = Clock_sync.max_skew_on_cuts input in
        Alcotest.(check bool) "skew <= 2Xi" true (skew <= Rat.floor_int (Rat.mul Rat.two x)));
    Alcotest.test_case "thm3: real-time skew <= 2Xi" `Quick (fun () ->
        let result = run ~max_events:250 () in
        let x = xi 5 2 in
        let input = { Clock_sync.result; correct = [ 0; 1; 2; 3 ]; xi = x } in
        let skew = Clock_sync.max_skew_realtime input in
        Alcotest.(check bool) "skew <= 2Xi" true (skew <= Rat.floor_int (Rat.mul Rat.two x)));
    Alcotest.test_case "the execution is ABC-admissible for Xi > Theta" `Quick (fun () ->
        let result = run ~max_events:200 () in
        Alcotest.(check bool) "admissible" true
          (Execgraph.Abc_check.is_admissible result.Sim.graph ~xi:(xi 5 2)));
    Alcotest.test_case "lemma 4: causal cone holds" `Quick (fun () ->
        let result = run ~max_events:250 () in
        let input = { Clock_sync.result; correct = [ 0; 1; 2; 3 ]; xi = xi 5 2 } in
        let checked, violations = Clock_sync.causal_cone_violations input in
        Alcotest.(check bool) "nontrivial" true (checked > 0);
        Alcotest.(check int) "no violations" 0 (List.length violations));
    Alcotest.test_case "lemma 4: causal cone with crash + byzantine mix" `Quick (fun () ->
        let faults =
          [| Sim.Correct; Sim.Correct; Sim.Correct; Sim.Correct; Sim.Correct; Sim.Crash 10; Sim.Byzantine "rush" |]
        in
        let result =
          run ~nprocs:7 ~f:2 ~faults:(Some faults) ~max_events:500
            ~byz:(Some (fun _ -> Clock_sync.byzantine_rusher ~ahead:5)) ()
        in
        let input =
          { Clock_sync.result; correct = [ 0; 1; 2; 3; 4 ]; xi = xi 5 2 }
        in
        let checked, violations = Clock_sync.causal_cone_violations input in
        Alcotest.(check bool) "nontrivial" true (checked > 0);
        Alcotest.(check int) "no violations" 0 (List.length violations));
    Alcotest.test_case "thm4: bounded progress rho = 4Xi+1" `Quick (fun () ->
        let result = run ~max_events:220 () in
        let input = { Clock_sync.result; correct = [ 0; 1; 2; 3 ]; xi = xi 5 2 } in
        let checked, violations = Clock_sync.bounded_progress_violations input in
        Alcotest.(check bool) "nontrivial" true (checked > 0);
        Alcotest.(check int) "no violations" 0 (List.length violations));
  ]

let prop name count arb f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb f)

let arb_seed = QCheck.make ~print:string_of_int QCheck.Gen.(int_range 0 100000)

let property_tests =
  [
    prop "thm2 skew bound across seeds and fault mixes" 15 arb_seed (fun seed ->
        let faults =
          match seed mod 3 with
          | 0 -> [| Sim.Correct; Sim.Correct; Sim.Correct; Sim.Correct |]
          | 1 -> [| Sim.Correct; Sim.Correct; Sim.Correct; Sim.Crash (seed mod 7) |]
          | _ -> [| Sim.Correct; Sim.Correct; Sim.Correct; Sim.Byzantine "rush" |]
        in
        let byz =
          if Array.exists (function Sim.Byzantine _ -> true | _ -> false) faults then
            Some (fun _ -> Clock_sync.byzantine_rusher ~ahead:(1 + (seed mod 6)))
          else None
        in
        let result = run ~seed ~faults:(Some faults) ~byz ~max_events:200 () in
        let correct = correct_of faults in
        let x = xi 5 2 in
        let input = { Clock_sync.result; correct; xi = x } in
        Clock_sync.max_skew_on_cuts input <= Rat.floor_int (Rat.mul Rat.two x));
    prop "lemma 4 across seeds" 10 arb_seed (fun seed ->
        let result = run ~seed ~max_events:180 () in
        let input = { Clock_sync.result; correct = [ 0; 1; 2; 3 ]; xi = xi 5 2 } in
        snd (Clock_sync.causal_cone_violations input) = []);
  ]

let suite = unit_tests @ property_tests
