(* Tests for the bounded model checker: the sch= wire field, schedule
   replay determinism (the property stateless search stands on),
   DPOR-vs-naive class/verdict equivalence on exhaustively explorable
   boxes, worker-count independence of the report, and schedule
   shrinking on the pinned boundary witness. *)

open Fuzz

let prop name count arb f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb f)

let q = Rat.of_ints

let clock_box ?(boundary = false) ?faults ~nprocs ~budget ~xi () =
  let faults =
    match faults with Some f -> f | None -> Array.make nprocs Sim.Correct
  in
  {
    Gen.c_seed = 1;
    c_nprocs = nprocs;
    c_faults = faults;
    c_xi = xi;
    c_sched = Gen.S_async { max_delay = Rat.one };
    c_workload = Gen.W_clock;
    c_max_events = budget;
    c_plan = [];
    c_boundary = boundary;
    c_schedule = [];
  }

let boundary_box ~budget ~xi =
  clock_box ~boundary:true
    ~faults:[| Sim.Correct; Sim.Correct; Byz.fault Byz.Equivocator |]
    ~nprocs:3 ~budget ~xi ()

(* the golden witness: greedy starvation schedule pushing skew past
   2Xi at n = 3f (see test/golden/mc_schedule_replay.expected) *)
let witness_line =
  "abc1;s=1;n=3;f=C,C,Beq;xi=3/2;w=clock;d=async:1;e=20;b=1;sch=0.0.0.6.0.2.5.1.6.2.6.4.6.7.8.8.9.10.10.11"

let wire_tests =
  [
    Alcotest.test_case "sch= field round-trips" `Quick (fun () ->
        let c =
          { (clock_box ~nprocs:3 ~budget:8 ~xi:(q 2 1) ()) with
            Gen.c_schedule = [ 0; 2; 1; 0; 3 ];
          }
        in
        let line = Replay.to_string c in
        (match Replay.of_string line with
        | Ok c' ->
            if c' <> c then
              Alcotest.failf "sch round-trip changed the case: %s" line
        | Error e -> Alcotest.failf "%s does not parse back: %s" line e);
        if not (String.length line > 4) then Alcotest.fail "empty line");
    Alcotest.test_case "schedule-free lines carry no sch= field" `Quick
      (fun () ->
        let line =
          Replay.to_string (clock_box ~nprocs:3 ~budget:8 ~xi:(q 2 1) ())
        in
        let contains needle hay =
          let nl = String.length needle and hl = String.length hay in
          let rec go i =
            i + nl <= hl && (String.sub hay i nl = needle || go (i + 1))
          in
          go 0
        in
        if contains "sch=" line then
          Alcotest.failf "unexpected sch= in %s" line);
    Alcotest.test_case "malformed schedules are rejected" `Quick (fun () ->
        List.iter
          (fun line ->
            match Replay.of_string line with
            | Error _ -> ()
            | Ok _ -> Alcotest.failf "%S should not parse" line)
          [
            "abc1;s=1;n=3;f=C,C,C;xi=2;w=clock;d=async:1;e=8;sch=";
            "abc1;s=1;n=3;f=C,C,C;xi=2;w=clock;d=async:1;e=8;sch=0..1";
            "abc1;s=1;n=3;f=C,C,C;xi=2;w=clock;d=async:1;e=8;sch=0.-1";
            "abc1;s=1;n=3;f=C,C,C;xi=2;w=clock;d=async:1;e=8;sch=zero";
            (* the deferring adversary picks its own order *)
            "abc1;s=1;n=3;f=C,C,C;xi=2;w=clock;d=defer:0:1;e=8;sch=0.1";
          ]);
    Alcotest.test_case "the golden witness line parses and fails" `Quick
      (fun () ->
        match Replay.of_string witness_line with
        | Error e -> Alcotest.failf "witness line rejected: %s" e
        | Ok c -> (
            if List.length c.Gen.c_schedule <> 20 then
              Alcotest.fail "witness schedule length changed";
            match
              List.assoc "boundary-precision"
                (Oracle.evaluate Oracle.registry c)
            with
            | Oracle.Fail _ -> ()
            | _ -> Alcotest.fail "witness no longer fails boundary-precision"));
  ]

let graph_dump g = Format.asprintf "%a" Execgraph.Graph.pp g

(* non-empty: [c_schedule = []] means "no schedule", so the empty
   prefix would compare against the case's own scheduler instead *)
let arb_choices =
  QCheck.make
    ~print:(fun l -> String.concat "." (List.map string_of_int l))
    QCheck.Gen.(list_size (int_range 1 8) (int_range 0 5))

let determinism_tests =
  [
    prop "schedule replay is deterministic (same prefix, same graph)" 50
      arb_choices (fun choices ->
        let case = clock_box ~nprocs:3 ~budget:8 ~xi:(q 2 1) () in
        let dump () =
          let sess, steps = Mc.Schedule.replay case choices in
          ( graph_dump (Gen.graph_of_run (sess.Gen.ms_run ())),
            Mc.Canon.key ~nprocs:3 steps )
        in
        dump () = dump ());
    prop "session replay agrees with Sim.run_scheduled" 50 arb_choices
      (fun choices ->
        let case = clock_box ~nprocs:3 ~budget:8 ~xi:(q 2 1) () in
        let sess, _ = Mc.Schedule.replay case choices in
        (* drive the session to a maximal execution, FIFO after the
           prefix, mirroring run_scheduled's continuation *)
        while not (sess.Gen.ms_finished ()) do
          ignore (sess.Gen.ms_deliver 0)
        done;
        let g_session = graph_dump (Gen.graph_of_run (sess.Gen.ms_run ())) in
        let g_sched =
          graph_dump
            (Gen.graph_of_run
               (Gen.run_case { case with Gen.c_schedule = choices }))
        in
        g_session = g_sched);
  ]

let equivalence_tests =
  let configs =
    [
      ("n=2 clock b=5", clock_box ~nprocs:2 ~budget:5 ~xi:(q 2 1) ());
      ("n=3 clock b=4", clock_box ~nprocs:3 ~budget:4 ~xi:(q 2 1) ());
      ("n=3 boundary b=5", boundary_box ~budget:5 ~xi:(q 3 2));
    ]
  in
  [
    Alcotest.test_case "dpor and naive agree on classes and verdicts" `Quick
      (fun () ->
        (* three independent searches of the same box: DPOR (sleep
           sets), exhaustive naive, and table-pruned naive — all must
           agree on the class list and every verdict; the reductions
           must actually reduce against the exhaustive baseline *)
        let dpor_reduced = ref 0 and tt_reduced = ref 0 in
        List.iter
          (fun (name, case) ->
            let dpor = Mc.Driver.run ~dpor:true ~jobs:1 case in
            let full = Mc.Driver.run ~dpor:false ~tt:false ~jobs:1 case in
            let tabled = Mc.Driver.run ~dpor:false ~tt:true ~jobs:1 case in
            let vd = Mc.Mc_report.render_verdicts dpor in
            let vn = Mc.Mc_report.render_verdicts full in
            let vt = Mc.Mc_report.render_verdicts tabled in
            if vd <> vn then
              Alcotest.failf "%s: verdict mismatch:\n--- dpor ---\n%s--- naive ---\n%s"
                name vd vn;
            if vt <> vn then
              Alcotest.failf
                "%s: verdict mismatch:\n--- naive+tt ---\n%s--- naive ---\n%s"
                name vt vn;
            let keys (o : Mc.Driver.outcome) =
              List.map (fun c -> c.Mc.Explore.cl_key) o.Mc.Driver.mc_classes
            in
            if keys dpor <> keys full then
              Alcotest.failf "%s: dpor/naive class key sets differ" name;
            if keys tabled <> keys full then
              Alcotest.failf "%s: naive+tt/naive class key sets differ" name;
            (* the table preserves first-seen representatives exactly *)
            let reps (o : Mc.Driver.outcome) =
              List.map (fun c -> c.Mc.Explore.cl_choices) o.Mc.Driver.mc_classes
            in
            if reps tabled <> reps full then
              Alcotest.failf "%s: the table changed class representatives" name;
            if dpor.Mc.Driver.mc_executions > full.Mc.Driver.mc_executions then
              Alcotest.failf "%s: dpor explored MORE executions than naive" name;
            if tabled.Mc.Driver.mc_executions > full.Mc.Driver.mc_executions
            then
              Alcotest.failf "%s: the table INCREASED naive executions" name;
            if full.Mc.Driver.mc_executions > dpor.Mc.Driver.mc_executions then
              incr dpor_reduced;
            if tabled.Mc.Driver.mc_tt_hits > 0 then incr tt_reduced)
          configs;
        if !dpor_reduced = 0 then
          Alcotest.fail "no config showed a dpor reduction ratio > 1";
        if !tt_reduced = 0 then
          Alcotest.fail "no config showed a transposition-table prune");
  ]

let jobs_tests =
  [
    Alcotest.test_case "report is byte-identical for --jobs 1 and 2" `Quick
      (fun () ->
        let case = clock_box ~nprocs:3 ~budget:5 ~xi:(q 2 1) () in
        let render jobs =
          Mc.Mc_report.render ~stats:false (Mc.Driver.run ~jobs case)
        in
        let r1 = render 1 and r2 = render 2 in
        if r1 <> r2 then
          Alcotest.failf "jobs-dependent output:\n--- jobs 1 ---\n%s--- jobs 2 ---\n%s"
            r1 r2);
  ]

let shrink_tests =
  [
    Alcotest.test_case "witness schedule shrinks and still fails" `Quick
      (fun () ->
        match Replay.of_string witness_line with
        | Error e -> Alcotest.failf "witness line rejected: %s" e
        | Ok c -> (
            let shrunk =
              Mc.Mc_shrink.shrink ~oracles:Oracle.registry
                ~oracle:"boundary-precision" c
            in
            if
              List.length shrunk.Gen.c_schedule
              > List.length c.Gen.c_schedule
            then Alcotest.fail "shrinking grew the schedule";
            if shrunk.Gen.c_schedule = [] then
              Alcotest.fail "shrunk to the empty schedule (meaning: none)";
            match
              List.assoc "boundary-precision"
                (Oracle.evaluate Oracle.registry shrunk)
            with
            | Oracle.Fail _ -> ()
            | _ -> Alcotest.fail "shrunk case no longer fails"));
  ]

let suite =
  wire_tests @ determinism_tests @ equivalence_tests @ jobs_tests
  @ shrink_tests
