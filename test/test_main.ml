let () =
  Alcotest.run "abc-repro"
    [
      ("bigint", Test_bigint.suite);
      ("rat", Test_rat.suite);
      ("digraph", Test_digraph.suite);
      ("execgraph", Test_execgraph.suite);
      ("cyclespace", Test_cyclespace.suite);
      ("lp", Test_lp.suite);
      ("abc", Test_abc.suite);
      ("clock_sync", Test_clock_sync.suite);
      ("lockstep", Test_lockstep.suite);
      ("delay_assignment", Test_delay_assignment.suite);
      ("failure_detector", Test_failure_detector.suite);
      ("models", Test_models.suite);
      ("consensus", Test_consensus.suite);
      ("sim", Test_sim.suite);
      ("extensions", Test_extensions.suite);
      ("robustness", Test_robustness.suite);
      ("fuzz", Test_fuzz.suite);
    ]
