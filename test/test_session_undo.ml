(* Snapshot/undo correctness for Sim.Session — the contract the
   incremental exploration engine stands on.

   The qcheck property drives a recording session through a random
   interleaving of deliveries, snapshots and undos (choices random,
   undo depth random) and demands that the observable state — ready
   list with every info field, delivered/envelope counters, finished
   flag, and finally the terminal execution's faithful graph — is
   byte-identical to a fresh session that replays only the surviving
   choice stack.  Cases come from the fuzzer's full nemesis palette,
   so crashes, recovery, omission, byzantine strategies and fault
   plans are all under the journal.

   The unit tests pin the edges the property reaches rarely: undo
   across a crash boundary and across plan-level drops/misdirects,
   undo from a budget-cut terminal, and the two misuse raises. *)

open Fuzz

let q = Rat.of_ints

let box ?(faults = [| Sim.Correct; Sim.Correct; Sim.Correct |]) ?(plan = [])
    ?(budget = 10) () =
  {
    Gen.c_seed = 1;
    c_nprocs = Array.length faults;
    c_faults = faults;
    c_xi = q 2 1;
    c_sched = Gen.S_async { max_delay = Rat.one };
    c_workload = Gen.W_clock;
    c_max_events = budget;
    c_plan = plan;
    c_boundary = false;
    c_schedule = [];
  }

let graph_dump g = Format.asprintf "%a" Execgraph.Graph.pp g

(* everything an explorer can see of a session, rendered *)
let observe (s : Gen.mc_session) =
  Printf.sprintf "delivered=%d envelopes=%d finished=%b ready=[%s]"
    (s.Gen.ms_delivered ()) (s.Gen.ms_envelopes ()) (s.Gen.ms_finished ())
    (String.concat ";"
       (List.map
          (fun (i : Sim.Session.info) ->
            Printf.sprintf "%d:%d>%d@%d%s%s" i.Sim.Session.i_env
              i.Sim.Session.i_sender i.Sim.Session.i_dst
              i.Sim.Session.i_posted_at
              (if i.Sim.Session.i_correct then "" else "!")
              (match i.Sim.Session.i_faithful_src with
              | None -> ""
              | Some v -> Printf.sprintf "^%d" v))
          (s.Gen.ms_ready ())))

(* replay [choices] (in delivery order) on a fresh session *)
let replay_fresh case choices =
  let s = Gen.open_session case in
  List.iter (fun c -> ignore (s.Gen.ms_deliver c)) choices;
  s

let check_matches_fresh name case choices (s : Gen.mc_session) =
  let fresh = replay_fresh case choices in
  Alcotest.(check string)
    (name ^ ": observable state matches a fresh replay")
    (observe fresh) (observe s)

(* drive both sessions to a maximal point the same way and compare the
   terminal executions *)
let check_terminal_matches_fresh name case choices (s : Gen.mc_session) =
  let fresh = replay_fresh case choices in
  let finish (t : Gen.mc_session) =
    while not (t.Gen.ms_finished ()) do
      ignore (t.Gen.ms_deliver 0)
    done;
    ( t.Gen.ms_delivered (),
      graph_dump (Gen.graph_of_run (t.Gen.ms_run ())) )
  in
  let dn, gn = finish s and df, gf = finish fresh in
  Alcotest.(check int) (name ^ ": terminal delivered count") df dn;
  Alcotest.(check string) (name ^ ": terminal faithful graph") gf gn

let property_tests =
  let prop name count arb f =
    QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb f)
  in
  let arb =
    QCheck.make
      ~print:(fun (seed, ops) ->
        Printf.sprintf "seed=%d ops=[%s]" seed
          (String.concat ";" (List.map string_of_int ops)))
      QCheck.Gen.(pair (int_range 0 2000) (list_size (int_range 1 40) nat))
  in
  [
    prop "random step/snapshot/undo interleavings match a fresh replay" 150
      arb
      (fun (seed, ops) ->
        let case = Gen.generate ~seed in
        let s = Gen.open_session ~record:true case in
        let stack = ref [] in
        (* interpret each op against the live session: 0/1 deliver a
           random ready message, 2 undoes one delivery, 3 checks the
           snapshot token, 4 undoes a whole random suffix *)
        List.iter
          (fun op ->
            match op mod 5 with
            | 2 when !stack <> [] ->
                s.Gen.ms_undo ();
                stack := List.tl !stack
            | 3 ->
                if s.Gen.ms_snapshot () <> List.length !stack then
                  QCheck.Test.fail_reportf
                    "snapshot %d after %d surviving deliveries"
                    (s.Gen.ms_snapshot ()) (List.length !stack)
            | 4 when !stack <> [] ->
                let k = 1 + (op mod List.length !stack) in
                for _ = 1 to k do
                  s.Gen.ms_undo ();
                  stack := List.tl !stack
                done
            | _ ->
                if not (s.Gen.ms_finished ()) then begin
                  let n = List.length (s.Gen.ms_ready ()) in
                  let c = op mod n in
                  ignore (s.Gen.ms_deliver c);
                  stack := c :: !stack
                end)
          ops;
        let choices = List.rev !stack in
        let fresh = replay_fresh case choices in
        if observe fresh <> observe s then
          QCheck.Test.fail_reportf
            "diverged from fresh replay of %s:\nlive:  %s\nfresh: %s"
            (Replay.to_string case) (observe s) (observe fresh);
        true);
  ]

let unit_tests =
  [
    Alcotest.test_case "undo across crash, recovery and omission faults"
      `Quick (fun () ->
        (* n = 10 keeps n >= 3f + 1 with all three fault shapes live *)
        let faults = Array.make 10 Sim.Correct in
        faults.(1) <- Sim.Crash 1;
        faults.(4) <- Sim.Recover (1, 2);
        faults.(7) <- Sim.Receive_omission 2;
        let case = box ~faults ~budget:14 () in
        let s = Gen.open_session ~record:true case in
        (* walk in, roll everything back, walk the same path again:
           fault counters must rewind exactly with the states *)
        let choices = [ 0; 1; 0; 2; 1; 0 ] in
        List.iter (fun c -> ignore (s.Gen.ms_deliver c)) choices;
        let at_depth = observe s in
        for _ = 1 to List.length choices do
          s.Gen.ms_undo ()
        done;
        check_matches_fresh "rewound to the root" case [] s;
        List.iter (fun c -> ignore (s.Gen.ms_deliver c)) choices;
        Alcotest.(check string) "re-delivery reproduces the state" at_depth
          (observe s);
        check_terminal_matches_fresh "terminal after rewind" case choices s);
    Alcotest.test_case "undo across plan drops and misdirects" `Quick
      (fun () ->
        let case =
          box
            ~plan:[ (3, Sim.P_drop); (4, Sim.P_misdirect 0); (6, Sim.P_drop) ]
            ~budget:10 ()
        in
        let s = Gen.open_session ~record:true case in
        let choices = [ 0; 0; 1; 0 ] in
        List.iter (fun c -> ignore (s.Gen.ms_deliver c)) choices;
        s.Gen.ms_undo ();
        s.Gen.ms_undo ();
        check_matches_fresh "after undoing past planned faults" case [ 0; 0 ]
          s;
        check_terminal_matches_fresh "terminal with a plan" case [ 0; 0 ] s);
    Alcotest.test_case "undo from a budget-cut terminal" `Quick (fun () ->
        let case = box ~budget:4 () in
        let s = Gen.open_session ~record:true case in
        let steps = ref 0 in
        while not (s.Gen.ms_finished ()) do
          ignore (s.Gen.ms_deliver 0);
          incr steps
        done;
        Alcotest.(check int) "budget cut the execution" 4 !steps;
        s.Gen.ms_undo ();
        Alcotest.(check bool) "one undo reopens the execution" false
          (s.Gen.ms_finished ());
        check_matches_fresh "below the cut" case [ 0; 0; 0 ] s;
        (* delivering again re-reaches a maximal point *)
        check_terminal_matches_fresh "re-finished" case [ 0; 0; 0 ] s);
    Alcotest.test_case "undo with nothing recorded raises" `Quick (fun () ->
        let s = Gen.open_session ~record:true (box ()) in
        Alcotest.check_raises "empty journal"
          (Invalid_argument "Sim.Session.undo: nothing recorded to undo")
          (fun () -> s.Gen.ms_undo ()));
    Alcotest.test_case "undo on a non-recording session raises" `Quick
      (fun () ->
        let s = Gen.open_session (box ()) in
        ignore (s.Gen.ms_deliver 0);
        Alcotest.check_raises "no journal"
          (Invalid_argument "Sim.Session.undo: nothing recorded to undo")
          (fun () -> s.Gen.ms_undo ()));
  ]

let suite = unit_tests @ property_tests
