(* Differential tests for the small-rational fast path: every Rat
   operation is checked against plain big-integer cross-product
   identities on operands engineered to straddle the Small/Big
   representation boundary (numerators and denominators around the
   30-bit small bound, the 62-bit word edge, and min_int/max_int).
   The canonical-form invariant — a value representable as Small is
   never held as Big, parts reduced, positive denominator — is what
   makes structural equality numeric equality; [Rat.check_invariant]
   asserts it on every produced value. *)

let bi = Bigint.of_int

(* Interesting integer magnitudes: both sides of the 2^30-1 small
   bound, both sides of the 62-bit edge where int products overflow,
   and the extreme native ints. *)
let gen_part =
  let open QCheck.Gen in
  let small_max = (1 lsl 30) - 1 in
  oneof
    [
      int_range (-50) 50;
      int_range (small_max - 3) (small_max + 3);
      int_range (-small_max - 3) (-small_max + 3);
      map (fun k -> (1 lsl 55) + k) (int_range (-3) 3);
      map (fun k -> min_int + k) (int_range 0 3);
      map (fun k -> max_int - k) (int_range 0 3);
      int_range (-1000000000000) 1000000000000;
    ]

let gen_rat =
  let open QCheck.Gen in
  map2
    (fun n d ->
      let d = if d = 0 then 1 else d in
      Rat.make (bi n) (bi d))
    gen_part gen_part

let arb_rat = QCheck.make ~print:Rat.to_string gen_rat

let arb_pair = QCheck.pair arb_rat arb_rat

(* x as the exact pair (num, den) of big integers. *)
let parts x = (Rat.num x, Rat.den x)

(* z = a/b in lowest terms iff z's cross products with a/b agree and z
   satisfies the representation invariant (canonical + small-iff-fits,
   which pins the representation uniquely). *)
let represents z ~num ~den =
  Rat.check_invariant z
  && Bigint.equal (Bigint.mul (Rat.num z) den) (Bigint.mul num (Rat.den z))

let prop name count arb f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb f)

let suite =
  [
    prop "add = cross-product sum" 1000 arb_pair (fun (x, y) ->
        let xn, xd = parts x and yn, yd = parts y in
        represents (Rat.add x y)
          ~num:(Bigint.add (Bigint.mul xn yd) (Bigint.mul yn xd))
          ~den:(Bigint.mul xd yd));
    prop "sub = cross-product difference" 1000 arb_pair (fun (x, y) ->
        let xn, xd = parts x and yn, yd = parts y in
        represents (Rat.sub x y)
          ~num:(Bigint.sub (Bigint.mul xn yd) (Bigint.mul yn xd))
          ~den:(Bigint.mul xd yd));
    prop "mul = product of parts" 1000 arb_pair (fun (x, y) ->
        let xn, xd = parts x and yn, yd = parts y in
        represents (Rat.mul x y) ~num:(Bigint.mul xn yn) ~den:(Bigint.mul xd yd));
    prop "div = cross product" 1000 arb_pair (fun (x, y) ->
        QCheck.assume (not (Rat.is_zero y));
        let xn, xd = parts x and yn, yd = parts y in
        represents (Rat.div x y) ~num:(Bigint.mul xn yd) ~den:(Bigint.mul xd yn));
    prop "mul_int agrees with mul" 1000
      (QCheck.pair arb_rat (QCheck.make ~print:string_of_int gen_part))
      (fun (x, k) ->
        let z = Rat.mul_int x k in
        Rat.check_invariant z && Rat.equal z (Rat.mul x (Rat.of_int k)));
    prop "compare = big-integer cross compare" 1000 arb_pair (fun (x, y) ->
        let xn, xd = parts x and yn, yd = parts y in
        Rat.compare x y = Bigint.compare (Bigint.mul xn yd) (Bigint.mul yn xd));
    prop "neg/abs/sign/inv consistent" 1000 arb_rat (fun x ->
        let n, d = parts x in
        Rat.check_invariant (Rat.neg x)
        && Rat.check_invariant (Rat.abs x)
        && represents (Rat.neg x) ~num:(Bigint.neg n) ~den:d
        && Rat.sign x = Bigint.sign n
        && (Rat.is_zero x
           || (Rat.check_invariant (Rat.inv x) && represents (Rat.inv x) ~num:d ~den:n)));
    prop "floor matches big-integer division" 1000 arb_rat (fun x ->
        let f = Rat.floor x in
        let fx = Rat.of_bigint f in
        Rat.O.(fx <= x) && Rat.O.(x < Rat.add fx Rat.one));
    prop "make canonicalizes at every magnitude" 1000
      (QCheck.pair (QCheck.make ~print:string_of_int gen_part)
         (QCheck.make ~print:string_of_int gen_part))
      (fun (n, d) ->
        QCheck.assume (d <> 0);
        let x = Rat.make (bi n) (bi d) in
        Rat.check_invariant x
        && Bigint.equal (Bigint.mul (Rat.num x) (bi d))
             (Bigint.mul (bi n) (Rat.den x)));
    prop "equal is structural across representations" 1000 arb_pair
      (fun (x, y) ->
        (* scale both by a big factor and back: forces a Big detour,
           which must land on the same representation *)
        let big = Rat.make (bi ((1 lsl 60) + 1)) (bi 1) in
        let x' = Rat.div (Rat.mul x big) big in
        Rat.equal x x'
        && Rat.is_small x = Rat.is_small x'
        && Rat.equal x y = (Rat.compare x y = 0));
  ]
