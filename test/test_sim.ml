(* Tests for the discrete-event simulator substrate itself: wake-up
   ordering, fault semantics, the faulty-message dropping rule for the
   faithful execution graph, scheduler behaviours, and trace/graph
   consistency. *)

open Execgraph

let q = Rat.of_ints

(* A transparent echo algorithm: every process records what it
   received; process 0 broadcasts a token at wake-up, everyone relays
   it exactly once. *)
type msg = Token of int

type echo_state = { seen : (int * int) list; relayed : bool }

let echo : (echo_state, msg) Sim.algorithm =
  {
    init =
      (fun ~self ~nprocs ->
        let sends =
          if self = 0 then List.init nprocs (fun d -> { Sim.dst = d; payload = Token 0 })
          else []
        in
        ({ seen = []; relayed = false }, sends));
    step =
      (fun ~self ~nprocs s ~sender (Token h) ->
        let s = { s with seen = (sender, h) :: s.seen } in
        if (not s.relayed) && self <> 0 then
          ( { s with relayed = true },
            List.init nprocs (fun d -> { Sim.dst = d; payload = Token (h + 1) }) )
        else (s, []));
  }

let run ?(nprocs = 3) ?(faults = None) ?byz ?(max_events = 100) ?(scheduler = None) () =
  let faults = match faults with Some f -> f | None -> Array.make nprocs Sim.Correct in
  let scheduler =
    match scheduler with
    | Some s -> s
    | None -> Sim.constant_scheduler (q 1 1)
  in
  Sim.run (Sim.make_config ?byzantine:byz ~nprocs ~algorithm:echo ~faults ~scheduler ~max_events ())

let unit_tests =
  [
    Alcotest.test_case "wake-ups precede every message" `Quick (fun () ->
        let r = run () in
        (* the first events at each process are its wake-up: trace
           entries with tr_sender = -1 come before any other entry of
           the same process *)
        let seen_wake = Array.make 3 false in
        Array.iter
          (fun te ->
            if te.Sim.tr_sender = -1 then seen_wake.(te.Sim.tr_proc) <- true
            else
              Alcotest.(check bool) "woke before receiving" true seen_wake.(te.Sim.tr_proc))
          r.Sim.trace);
    Alcotest.test_case "faithful graph equals full graph when all correct" `Quick
      (fun () ->
        let r = run () in
        Alcotest.(check int) "same events" (Graph.event_count r.Sim.full_graph)
          (Graph.event_count r.Sim.graph));
    Alcotest.test_case "graphs are DAGs with consistent local chains" `Quick (fun () ->
        let r = run ~max_events:60 () in
        Alcotest.(check bool) "faithful DAG" true (Graph.is_dag r.Sim.graph);
        Alcotest.(check bool) "full DAG" true (Graph.is_dag r.Sim.full_graph);
        (* seq numbers are dense and in insertion order per process *)
        List.iter
          (fun p ->
            List.iteri
              (fun i id ->
                Alcotest.(check int) "dense seq" i (Graph.event r.Sim.graph id).Event.seq)
              (Graph.events_of_proc r.Sim.graph p))
          [ 0; 1; 2 ]);
    Alcotest.test_case "crash stops processing but not receiving" `Quick (fun () ->
        let faults = [| Sim.Correct; Sim.Crash 1; Sim.Correct |] in
        let r = run ~faults:(Some faults) () in
        (* p1 woke (1 step) then crashed: its state never relays *)
        Alcotest.(check bool) "p1 did not relay" false r.Sim.final_states.(1).relayed;
        (* receive events at p1 still exist in the full graph... *)
        Alcotest.(check bool) "p1 has receive events" true
          (List.length (Graph.events_of_proc r.Sim.full_graph 1) > 1);
        (* ...but the faithful graph keeps only the processed wake-up:
           unprocessed deliveries are causally inert *)
        Alcotest.(check int) "faithful keeps only processed steps" 1
          (List.length (Graph.events_of_proc r.Sim.graph 1));
        (* and unprocessed trace entries are flagged *)
        Alcotest.(check bool) "unprocessed entries exist" true
          (Array.exists
             (fun te -> te.Sim.tr_proc = 1 && not te.Sim.tr_processed)
             r.Sim.trace));
    Alcotest.test_case "crash at 0 still yields an initial state" `Quick (fun () ->
        let faults = [| Sim.Correct; Sim.Crash 0; Sim.Correct |] in
        let r = run ~faults:(Some faults) () in
        Alcotest.(check bool) "initial state" false r.Sim.final_states.(1).relayed;
        Alcotest.(check (list (pair int int))) "saw nothing" [] r.Sim.final_states.(1).seen);
    Alcotest.test_case "byzantine-sent messages dropped from faithful graph" `Quick
      (fun () ->
        let faults = [| Sim.Correct; Sim.Byzantine "flood"; Sim.Correct |] in
        let byz : (echo_state, msg) Sim.algorithm =
          {
            init =
              (fun ~self:_ ~nprocs ->
                ( { seen = []; relayed = false },
                  List.init nprocs (fun d -> { Sim.dst = d; payload = Token 99 }) ));
            step = (fun ~self:_ ~nprocs:_ s ~sender:_ _ -> (s, []));
          }
        in
        let r = run ~faults:(Some faults) ~byz:(fun _ -> byz) () in
        (* the byzantine broadcast reached everyone in the full graph
           but none of its messages appear in the faithful one *)
        Alcotest.(check bool) "full has more events" true
          (Graph.event_count r.Sim.full_graph > Graph.event_count r.Sim.graph);
        (* faithful message count = full minus byz-sent *)
        let byz_receipts =
          Array.fold_left
            (fun acc te -> if te.Sim.tr_sender = 1 then acc + 1 else acc)
            0 r.Sim.trace
        in
        Alcotest.(check int) "every byz receipt dropped"
          (Graph.event_count r.Sim.full_graph - byz_receipts)
          (Graph.event_count r.Sim.graph));
    Alcotest.test_case "scheduler delays shape arrival order" `Quick (fun () ->
        (* constant delay 1: token relays arrive in generations *)
        let r = run () in
        let times =
          List.filter_map
            (fun id -> (Graph.event r.Sim.graph id).Event.time)
            (List.init (Graph.event_count r.Sim.graph) Fun.id)
        in
        Alcotest.(check bool) "timestamps recorded" true (times <> []);
        List.iter
          (fun t -> Alcotest.(check bool) "integral times" true (Rat.is_integer t))
          times);
    Alcotest.test_case "make_config rejects a wrong-sized fault vector" `Quick
      (fun () ->
        Alcotest.check_raises "size mismatch"
          (Invalid_argument "Sim.make_config: faults size") (fun () ->
            ignore
              (Sim.make_config ~nprocs:3 ~algorithm:echo
                 ~faults:(Array.make 4 Sim.Correct)
                 ~scheduler:(Sim.constant_scheduler (q 1 1))
                 ~max_events:10 ())));
    Alcotest.test_case "make_config rejects Byzantine without a byz algorithm"
      `Quick (fun () ->
        Alcotest.check_raises "missing byzantine"
          (Invalid_argument
             "Sim.make_config: Byzantine faults require a byzantine algorithm")
          (fun () ->
            ignore
              (Sim.make_config ~nprocs:4 ~algorithm:echo
                 ~faults:[| Sim.Correct; Sim.Correct; Sim.Correct; Sim.Byzantine "x" |]
                 ~scheduler:(Sim.constant_scheduler (q 1 1))
                 ~max_events:10 ())));
    Alcotest.test_case "make_config accepts Byzantine with a byz algorithm" `Quick
      (fun () ->
        let cfg =
          Sim.make_config ~byzantine:(fun _ -> echo) ~nprocs:4 ~algorithm:echo
            ~faults:[| Sim.Correct; Sim.Correct; Sim.Correct; Sim.Byzantine "" |]
            ~scheduler:(Sim.constant_scheduler (q 1 1))
            ~max_events:50 ()
        in
        ignore (Sim.run cfg));
    Alcotest.test_case "fault round-trips through fault_of_string" `Quick
      (fun () ->
        List.iter
          (fun f ->
            Alcotest.(check bool)
              "round-trip" true
              (Sim.fault_of_string (Sim.fault_to_string f) = Some f))
          [
            Sim.Correct;
            Sim.Byzantine "";
            Sim.Byzantine "eq";
            Sim.Byzantine "rush4";
            Sim.Crash 0;
            Sim.Crash 7;
            Sim.Send_omission 0;
            Sim.Send_omission 5;
            Sim.Receive_omission 1;
            Sim.Receive_omission 4;
            Sim.Recover (0, 1);
            Sim.Recover (5, 6);
          ];
        List.iter
          (fun s ->
            Alcotest.(check bool) (Printf.sprintf "rejected %S" s) true
              (Sim.fault_of_string s = None))
          [ ""; "X"; "K"; "K-1"; "Kx"; "CC"; "SO"; "SOx"; "RO"; "RO0"; "R1";
            "R-1"; "R1-0"; "R1-"; "BEQ"; "B eq"; "Beq!" ]);
    Alcotest.test_case "negative delays are rejected" `Quick (fun () ->
        let scheduler =
          { Sim.delay = (fun ~sender:_ ~dst:_ ~send_time:_ ~msg_index:_ ~payload:_ -> q (-1) 1) }
        in
        Alcotest.check_raises "invalid" (Invalid_argument "Sim.run: negative delay")
          (fun () -> ignore (run ~scheduler:(Some scheduler) ())));
    Alcotest.test_case "stop_when halts the run" `Quick (fun () ->
        let r =
          Sim.run
            (Sim.make_config ~nprocs:3 ~algorithm:echo
               ~faults:(Array.make 3 Sim.Correct)
               ~scheduler:(Sim.constant_scheduler (q 1 1))
               ~max_events:1000
               ~stop_when:(fun states -> Array.exists (fun s -> s.relayed) states)
               ())
        in
        Alcotest.(check bool) "stopped early" true (r.Sim.delivered < 1000));
    Alcotest.test_case "theta scheduler respects its bounds" `Quick (fun () ->
        let rng = Random.State.make [| 4 |] in
        let s = Sim.theta_scheduler ~rng ~tau_minus:(q 3 2) ~tau_plus:(q 4 1) () in
        for i = 0 to 200 do
          let d =
            s.Sim.delay ~sender:0 ~dst:1 ~send_time:Rat.zero ~msg_index:i ~payload:(Token 0)
          in
          Alcotest.(check bool) "within bounds" true Rat.O.(d >= q 3 2 && d <= q 4 1)
        done);
    Alcotest.test_case "growing scheduler grows" `Quick (fun () ->
        let rng = Random.State.make [| 4 |] in
        let s =
          Sim.growing_scheduler ~rng
            ~cluster_of:(fun p -> p mod 2)
            ~intra_min:(q 1 1) ~intra_max:(q 2 1) ~inter_base:(q 3 1) ~growth_rate:(q 1 1) ()
        in
        let at t =
          s.Sim.delay ~sender:0 ~dst:1 ~send_time:(q t 1) ~msg_index:0 ~payload:(Token 0)
        in
        Alcotest.(check bool) "monotone growth" true Rat.O.(at 10 > at 1);
        let intra =
          s.Sim.delay ~sender:0 ~dst:2 ~send_time:(q 50 1) ~msg_index:0 ~payload:(Token 0)
        in
        Alcotest.(check bool) "intra stays bounded" true Rat.O.(intra <= q 2 1));
    Alcotest.test_case "eventually-theta switches at gst" `Quick (fun () ->
        let rng = Random.State.make [| 4 |] in
        let s =
          Sim.eventually_theta_scheduler ~rng ~gst:(q 10 1) ~chaos_max:(q 100 1)
            ~tau_minus:(q 1 1) ~tau_plus:(q 2 1) ()
        in
        for i = 0 to 100 do
          let d =
            s.Sim.delay ~sender:0 ~dst:1 ~send_time:(q 11 1) ~msg_index:i ~payload:(Token 0)
          in
          Alcotest.(check bool) "steady after gst" true Rat.O.(d >= q 1 1 && d <= q 2 1)
        done);
  ]

(* ------------------------------------------------------------------ *)
(* Oracle-guided deferring adversary *)

let adversary_tests =
  [
    Alcotest.test_case "deferring adversary keeps executions admissible" `Quick
      (fun () ->
        let xi = q 2 1 in
        let cfg =
          Sim.make_config ~nprocs:3
            ~algorithm:(Core.Clock_sync.algorithm ~f:0)
            ~faults:(Array.make 3 Sim.Correct)
            ~scheduler:(Sim.constant_scheduler (q 1 1)) (* unused by run_deferring *)
            ~max_events:120 ()
        in
        let r = Sim.run_deferring cfg ~xi ~victim:(fun ~sender:_ ~dst -> dst = 2) in
        Alcotest.(check bool) "admissible" true (Abc_check.is_admissible r.Sim.graph ~xi);
        Alcotest.(check bool) "DAG" true (Graph.is_dag r.Sim.graph);
        (* the adversary actually defers: process 2 executes fewer
           events than the others *)
        let count p = List.length (Graph.events_of_proc r.Sim.graph p) in
        Alcotest.(check bool) "victim starved" true (count 2 < count 0 && count 2 < count 1));
    Alcotest.test_case "deferred executions sit near the admissibility boundary" `Quick
      (fun () ->
        let xi = q 3 1 in
        let cfg =
          Sim.make_config ~nprocs:3
            ~algorithm:(Core.Clock_sync.algorithm ~f:0)
            ~faults:(Array.make 3 Sim.Correct)
            ~scheduler:(Sim.constant_scheduler (q 1 1))
            ~max_events:150 ()
        in
        let r = Sim.run_deferring cfg ~xi ~victim:(fun ~sender:_ ~dst -> dst = 2) in
        Alcotest.(check bool) "admissible at Xi" true
          (Abc_check.is_admissible r.Sim.graph ~xi);
        (* whatever relevant cycles the deferral creates stay strictly
           below Xi (the adversary stops exactly at the boundary) *)
        (match Core.Abc.max_relevant_ratio r.Sim.graph with
        | None -> ()
        | Some ratio ->
            Alcotest.(check bool)
              (Printf.sprintf "ratio %s < Xi" (Rat.to_string ratio))
              true
              Rat.O.(ratio < q 3 1)));
    Alcotest.test_case "adversary rides the boundary when the system can progress" `Quick
      (fun () ->
        (* n = 4, f = 1: the other three advance without the victim, so
           its deferred ticks close relevant cycles with ratios
           approaching Xi from below *)
        let xi = q 3 1 in
        let cfg =
          Sim.make_config ~nprocs:4
            ~algorithm:(Core.Clock_sync.algorithm ~f:1)
            ~faults:(Array.make 4 Sim.Correct)
            ~scheduler:(Sim.constant_scheduler (q 1 1))
            ~max_events:240 ()
        in
        let r = Sim.run_deferring cfg ~xi ~victim:(fun ~sender ~dst:_ -> sender = 3) in
        Alcotest.(check bool) "admissible" true (Abc_check.is_admissible r.Sim.graph ~xi);
        match Core.Abc.max_relevant_ratio r.Sim.graph with
        | None -> Alcotest.fail "expected relevant cycles"
        | Some ratio ->
            Alcotest.(check bool)
              (Printf.sprintf "ratio %s in [2, 3)" (Rat.to_string ratio))
              true
              Rat.O.(ratio >= q 2 1 && ratio < q 3 1));
    Alcotest.test_case "deferring with no victims behaves like FIFO" `Quick (fun () ->
        let cfg =
          Sim.make_config ~nprocs:3 ~algorithm:echo
            ~faults:(Array.make 3 Sim.Correct)
            ~scheduler:(Sim.constant_scheduler (q 1 1))
            ~max_events:50 ()
        in
        let r = Sim.run_deferring cfg ~xi:(q 2 1) ~victim:(fun ~sender:_ ~dst:_ -> false) in
        Alcotest.(check bool) "all delivered or capped" true
          (r.Sim.delivered = 50 || r.Sim.undelivered = 0));
  ]

let suite = unit_tests @ adversary_tests
