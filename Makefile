.PHONY: all build test fuzz boundary check check-par mc-smoke dist-smoke net-smoke bench reports coverage clean

# Cases for the parallel determinism check; override with
# `make check-par CASES=1000` for the full acceptance run.
CASES ?= 200

all: build

build:
	dune build

test: build
	dune runtest

# A short seeded fuzz campaign: runs as many cases as fit in ~5 CPU
# seconds, deterministic up to where the budget cuts it off.
fuzz: build
	dune exec bin/abc_cli.exe -- fuzz --time-budget 5 --seed 1 --no-shrink

# Negative-oracle smoke: a resilience-boundary campaign (every case at
# n = 3f with an equivocator) must witness violations of Theorem 2
# precision and of EIG agreement; --expect-violations makes the exit
# code demand that every boundary oracle fired.
boundary: build
	dune exec bin/abc_cli.exe -- fuzz --boundary --cases 25 --seed 1 --no-shrink --expect-violations

check: build test fuzz boundary

# Parallel-campaign determinism: run the same campaign serially and on
# a worker pool and require byte-identical reports (the bench harness
# exits non-zero on divergence and writes BENCH_pool.json), then the
# pool unit suite.
check-par: build
	dune exec bench/main.exe -- pool --cases $(CASES) --jobs 4 --seed 1 --out BENCH_pool.json
	dune exec test/test_main.exe -- test pool -q

# Model-checker smoke (< 60 s): exhaustively explore a small box with
# --cross-check (the replay engine and the naive search must both
# agree with the default incremental DPOR run on every class and
# verdict), the same cross-check at a budget the exhaustive naive
# search could not finish (engine + table-pruned naive), and the mc
# bench — which exits non-zero if the engines' class sets differ, if
# deliveries_per_exec regresses above 1.5x the schedule depth, if the
# transposition table loses classes, or if the search reduction vs
# the pinned stateless-checker baseline falls under its floor.
mc-smoke: build
	dune exec bin/abc_cli.exe -- mc --procs 3 --budget 6 --cross-check --jobs 1
	dune exec bin/abc_cli.exe -- mc --procs 3 --budget 8 --cross-check --jobs 1
	dune exec bench/main.exe -- mc --out BENCH_mc.json

# Distributed-campaign smoke: the sharded subprocess runner must be
# byte-identical to the serial report even under a kill+stall nemesis;
# a supervisor-killed checkpointed run must exit 3 and then --resume
# to exactly the uninterrupted report; the sharded model checker must
# match its serial run; and the dist bench must agree (it exits
# non-zero on any divergence and writes BENCH_dist.json).
dist-smoke: build
	dune exec bin/abc_cli.exe -- fuzz --cases 200 --seed 1 > _build/dist_serial.txt
	dune exec bin/abc_cli.exe -- fuzz --cases 200 --seed 1 --shards 4 \
	  --nemesis 'kill:0@2,stall:1@1' --heartbeat 2 > _build/dist_sharded.txt
	cmp _build/dist_serial.txt _build/dist_sharded.txt
	rm -f _build/dist.ckpt
	dune exec bin/abc_cli.exe -- fuzz --cases 200 --seed 1 --shards 4 \
	  --checkpoint _build/dist.ckpt --nemesis 'skill@2' > /dev/null; test $$? -eq 3
	dune exec bin/abc_cli.exe -- fuzz --cases 200 --seed 1 --shards 4 \
	  --resume _build/dist.ckpt > _build/dist_resumed.txt
	cmp _build/dist_serial.txt _build/dist_resumed.txt
	dune exec bin/abc_cli.exe -- mc --procs 3 --budget 5 --faults C,C,Beq \
	  --boundary > _build/dist_mc_serial.txt
	dune exec bin/abc_cli.exe -- mc --procs 3 --budget 5 --faults C,C,Beq \
	  --boundary --shards 2 > _build/dist_mc_sharded.txt
	cmp _build/dist_mc_serial.txt _build/dist_mc_sharded.txt
	dune exec bench/main.exe -- dist --out BENCH_dist.json

# Network smoke: campaigns over real localhost sockets must be
# byte-identical to the serial report — for a dialed unix-socket
# worker fleet, and for self-registering TCP workers (abc serve
# --connect) under every network fault the harness injects, including
# a stall that forces a heartbeat kill and a unit re-lease onto the
# surviving endpoint; the net bench must agree (it exits non-zero on
# any divergence and writes BENCH_net.json).  Workers run from the
# built binary directly so they can sit in the background without
# fighting dune's build lock.
NET_PORT ?= 17873
ABC = _build/default/bin/abc_cli.exe
net-smoke: build
	dune exec bin/abc_cli.exe -- fuzz --cases 200 --seed 1 > _build/net_serial.txt
	rm -f /tmp/abc_net_smoke_1.sock /tmp/abc_net_smoke_2.sock
	$(ABC) serve --listen unix:/tmp/abc_net_smoke_1.sock --id 1 --once & \
	$(ABC) serve --listen unix:/tmp/abc_net_smoke_2.sock --id 2 --once & \
	$(ABC) fuzz --cases 200 --seed 1 --shards 4 \
	  --workers unix:/tmp/abc_net_smoke_1.sock,unix:/tmp/abc_net_smoke_2.sock \
	  > _build/net_workers.txt; \
	wait; cmp _build/net_serial.txt _build/net_workers.txt
	for nem in nrefuse:1@1 ndrop:1@2 npartial:1@1 ndup:1@2 stall:1@2; do \
	  hb=2; if [ "$$nem" = "stall:1@2" ]; then hb=1; fi; \
	  $(ABC) serve --connect 127.0.0.1:$(NET_PORT) --id 1 --nemesis "$$nem" --once & w1=$$!; \
	  $(ABC) serve --connect 127.0.0.1:$(NET_PORT) --id 2 --once & w2=$$!; \
	  $(ABC) fuzz --cases 200 --seed 1 --shards 4 \
	    --listen 127.0.0.1:$(NET_PORT) --heartbeat $$hb > _build/net_fault.txt \
	    || exit 1; \
	  kill $$w1 $$w2 2>/dev/null; wait $$w1 $$w2 2>/dev/null; \
	  cmp _build/net_serial.txt _build/net_fault.txt || exit 1; \
	  echo "net-smoke: identical under $$nem"; \
	done
	dune exec bench/main.exe -- net --out BENCH_net.json

reports: build
	dune exec bench/main.exe -- reports

# Line coverage via bisect_ppx.  The (instrumentation) stanzas in the
# library dune files are inert unless --instrument-with is passed, so
# the normal build has no bisect_ppx dependency; this target skips
# with a notice when the package is missing (CI installs it) and
# fails if lib/obs line coverage drops below 80%.
coverage:
	@if ! command -v bisect-ppx-report >/dev/null 2>&1; then \
	  echo "coverage: bisect_ppx not installed; skipping (opam install bisect_ppx)"; \
	else \
	  rm -rf _coverage; \
	  find . -name '*.coverage' -not -path './_opam/*' -delete; \
	  dune runtest --instrument-with bisect_ppx --force; \
	  bisect-ppx-report html -o _coverage; \
	  bisect-ppx-report summary --per-file; \
	  bisect-ppx-report summary --per-file \
	    | awk '/lib\/obs\/obs\.ml/ { pct = $$1 + 0; found = 1; \
	        if (pct < 80) { printf "coverage: lib/obs/obs.ml at %.2f%% < 80%%\n", pct; exit 1 } \
	        else printf "coverage: lib/obs/obs.ml at %.2f%% (>= 80%%)\n", pct } \
	      END { if (!found) { print "coverage: lib/obs/obs.ml missing from report"; exit 1 } }'; \
	fi

bench: build
	dune exec bench/main.exe

clean:
	dune clean
