.PHONY: all build test fuzz check bench reports clean

all: build

build:
	dune build

test: build
	dune runtest

# A short seeded fuzz campaign: runs as many cases as fit in ~5 CPU
# seconds, deterministic up to where the budget cuts it off.
fuzz: build
	dune exec bin/abc_cli.exe -- fuzz --time-budget 5 --seed 1 --no-shrink

check: build test fuzz

reports: build
	dune exec bench/main.exe -- reports

bench: build
	dune exec bench/main.exe

clean:
	dune clean
