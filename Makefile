.PHONY: all build test fuzz check check-par bench reports clean

# Cases for the parallel determinism check; override with
# `make check-par CASES=1000` for the full acceptance run.
CASES ?= 200

all: build

build:
	dune build

test: build
	dune runtest

# A short seeded fuzz campaign: runs as many cases as fit in ~5 CPU
# seconds, deterministic up to where the budget cuts it off.
fuzz: build
	dune exec bin/abc_cli.exe -- fuzz --time-budget 5 --seed 1 --no-shrink

check: build test fuzz

# Parallel-campaign determinism: run the same campaign serially and on
# a worker pool and require byte-identical reports (the bench harness
# exits non-zero on divergence and writes BENCH_pool.json), then the
# pool unit suite.
check-par: build
	dune exec bench/main.exe -- pool --cases $(CASES) --jobs 4 --seed 1 --out BENCH_pool.json
	dune exec test/test_main.exe -- test pool -q

reports: build
	dune exec bench/main.exe -- reports

bench: build
	dune exec bench/main.exe

clean:
	dune clean
